use crate::app::{build_globals, AppContext, HostApp};
use crate::argfile::ArgFileError;
use crate::loader::{alloc_device_globals, inject_main_wrapper, make_rpc_hook, GLOBALS_TAG};
use dgc_compiler::{compile, CompileError, CompilerOptions};
use dgc_ir::{Module, ParseError};
use dgc_obs::{
    record_schedule, CriticalHop, InstanceMetrics, LatencyPercentiles, LaunchMetrics, LaunchNode,
    LaunchTimeline, Recorder, RpcCallCounts, SpanGraph, METRICS_SCHEMA_VERSION, PID_HOST,
};
use gpu_mem::{AllocError, TransferDirection};
use gpu_sim::{Gpu, InjectedTeamFault, KernelError, KernelSpec, SimError, SimReport, TeamOutcome};
use host_rpc::{HostServices, RpcFaultHook, RpcServer, RpcStats};
use serde::Value;

/// How instances map onto the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingStrategy {
    /// The paper's implemented scheme: instance *i* → team *i*, one team
    /// per thread block (`target teams distribute num_teams(N)`).
    OnePerTeam,
    /// The §3.1 `(N/M, M, 1)` scheme: `per_block` instances share one
    /// thread block, each using `thread_limit / per_block` threads.
    /// Described as future work in the paper; implemented here.
    Packed { per_block: u32 },
}

/// Options of the enhanced loader (paper §3.2):
/// `-n` → [`EnsembleOptions::num_instances`], `-t` →
/// [`EnsembleOptions::thread_limit`]; the `-f` argument file is parsed
/// separately and passed as lines.
#[derive(Debug, Clone)]
pub struct EnsembleOptions {
    pub num_instances: u32,
    pub thread_limit: u32,
    pub mapping: MappingStrategy,
    pub compiler: CompilerOptions,
    /// Allow fewer argument lines than instances by cycling the file
    /// modulo (`--cycle-args`). Off by default: the paper's loader pairs
    /// one line per instance, and silently reusing lines hides truncated
    /// argument files — a shortfall is a hard error instead.
    pub cycle_args: bool,
    /// Utilization sampling interval in device cycles (`--timeline` /
    /// `--sample-interval`). `None` (the default) disables sampling and
    /// keeps traces and metrics byte-identical to pre-telemetry output;
    /// `Some(interval)` makes every launch carry a utilization timeline.
    /// Sampling is pure bookkeeping: it never perturbs simulated timing.
    pub sample_interval: Option<f64>,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        Self {
            num_instances: 1,
            thread_limit: 128,
            mapping: MappingStrategy::OnePerTeam,
            compiler: CompilerOptions::default(),
            cycle_args: false,
            sample_interval: None,
        }
    }
}

/// What one instance produced.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceOutcome {
    /// Exit code (explicit `exit()` beats the `__user_main` return value).
    pub exit_code: Option<i32>,
    /// Trap message if the instance did not complete.
    pub error: Option<String>,
    /// The trap was a device out-of-memory — the condition that limited
    /// Page-Rank to 4 instances in the paper's evaluation.
    pub oom: bool,
    /// The instance was killed by the watchdog (exceeded its cycle
    /// budget). Always a subset of the trapped instances.
    pub timed_out: bool,
}

impl InstanceOutcome {
    pub fn succeeded(&self) -> bool {
        self.error.is_none() && self.exit_code == Some(0)
    }
}

/// Device-heap rollup for one launch (metrics schema v6).
///
/// A plain launch reads one device; the batched and resilient drivers
/// fold successive launches on the same device with [`HeapUsage::absorb`],
/// and the sharded driver concatenates one `peak_bytes` entry per device.
#[derive(Debug, Clone, Default)]
pub struct HeapUsage {
    /// Peak bytes in use per device while the ensemble ran.
    pub peak_bytes: Vec<u64>,
    /// Worst observed end-of-launch fragmentation
    /// (`1 − largest hole / free bytes`, 0 when the heap is one hole).
    pub fragmentation: f64,
    /// Allocations that missed the per-team free list and fell back to
    /// the global first-fit map. 0 whenever free lists are disabled.
    pub alloc_fallbacks: u64,
}

impl HeapUsage {
    /// Fold a successive launch on the *same* device set: peaks and
    /// fragmentation take the max (the heap drains between launches),
    /// fallback counts accumulate.
    pub fn absorb(&mut self, other: &HeapUsage) {
        if self.peak_bytes.len() < other.peak_bytes.len() {
            self.peak_bytes.resize(other.peak_bytes.len(), 0);
        }
        for (mine, theirs) in self.peak_bytes.iter_mut().zip(&other.peak_bytes) {
            *mine = (*mine).max(*theirs);
        }
        self.fragmentation = self.fragmentation.max(other.fragmentation);
        self.alloc_fallbacks += other.alloc_fallbacks;
    }
}

/// Result of one ensemble launch.
#[derive(Debug)]
pub struct EnsembleResult {
    pub instances: Vec<InstanceOutcome>,
    /// Per-instance captured stdout.
    pub stdout: Vec<String>,
    pub report: SimReport,
    /// Kernel time (the paper's `TN`).
    pub kernel_time_s: f64,
    /// Kernel + argument mapping + result copy-back.
    pub total_time_s: f64,
    /// When each instance's team finished, in simulated seconds from
    /// kernel start (instances sharing a block under the packed mapping
    /// share their block's completion time).
    pub instance_end_times_s: Vec<f64>,
    pub rpc_stats: RpcStats,
    /// Per-instance observability rollup (always computed; export it with
    /// [`dgc_obs::metrics_jsonl`]).
    pub metrics: Vec<InstanceMetrics>,
    /// Utilization time series (metrics schema v5). Empty unless
    /// [`EnsembleOptions::sample_interval`] enabled sampling.
    pub timeline: LaunchTimeline,
    /// The causal span graph of the run: one [`LaunchNode`] per kernel
    /// launch carrying the exact wall-time addend the driver accumulated
    /// plus the in-kernel critical chain. Outer drivers (batched,
    /// resilient, sharded) merge and re-stamp it exactly as they do the
    /// instance metrics, so `graph.replay_makespan_s()` reproduces the
    /// reported makespan bit-exactly. Consumed by `dgc-insight`.
    pub graph: SpanGraph,
    /// Device-heap occupancy rollup (metrics schema v6).
    pub heap: HeapUsage,
}

impl EnsembleResult {
    pub fn all_succeeded(&self) -> bool {
        self.instances.iter().all(|i| i.succeeded())
    }

    pub fn any_oom(&self) -> bool {
        self.instances.iter().any(|i| i.oom)
    }

    /// Load imbalance of the launch: latest instance finish over the mean
    /// finish (1.0 = perfectly balanced). Heterogeneous argument files
    /// make the whole kernel wait for the slowest instance — the cost the
    /// paper's fixed instance→team mapping accepts.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.instance_end_times_s.len();
        if n == 0 {
            return 1.0;
        }
        let max = self
            .instance_end_times_s
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let mean: f64 = self.instance_end_times_s.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Launch-wide metrics record (the last line of the JSONL export).
    pub fn launch_metrics(&self) -> LaunchMetrics {
        LaunchMetrics {
            schema: METRICS_SCHEMA_VERSION,
            kernel: self.report.kernel_name.clone(),
            instances: self.instances.len() as u32,
            failed: self.failed_count(),
            oom: self.oom_count(),
            kernel_time_s: self.kernel_time_s,
            total_time_s: self.total_time_s,
            devices: 1,
            makespan_s: self.total_time_s,
            waves: self.report.waves,
            rpc_total: self.rpc_stats.total(),
            // A plain launch is one attempt with no recovery: anything
            // that failed stays failed.
            attempts: 1,
            retried: 0,
            recovered: 0,
            unrecovered: self.failed_count(),
            timeouts: self.timed_out_count(),
            oom_splits: 0,
            final_batch: self.instances.len() as u32,
            backoff_s: 0.0,
            latency: LatencyPercentiles::from_seconds(self.instance_end_times_s.iter().copied()),
            rpc_stall: LatencyPercentiles::from_seconds(self.metrics.iter().map(|m| m.rpc_stall_s)),
            utilization_mean: crate::stats::utilization_mean(&self.timeline.issue_rates()).ok(),
            utilization_p95: crate::stats::utilization_p95(&self.timeline.issue_rates()).ok(),
            peak_mem_bytes: self.heap.peak_bytes.clone(),
            fragmentation: self.heap.fragmentation,
            alloc_fallbacks: self.heap.alloc_fallbacks,
            timeline: self.timeline.points.clone(),
        }
    }

    /// Instances that trapped or exited non-zero.
    pub fn failed_count(&self) -> u32 {
        self.instances.iter().filter(|i| !i.succeeded()).count() as u32
    }

    /// Instances that died on device-heap exhaustion.
    pub fn oom_count(&self) -> u32 {
        self.instances.iter().filter(|i| i.oom).count() as u32
    }

    /// Instances killed by the watchdog.
    pub fn timed_out_count(&self) -> u32 {
        self.instances.iter().filter(|i| i.timed_out).count() as u32
    }
}

/// Ensemble-loader failures (per-instance traps are reported in
/// [`EnsembleResult::instances`], not here).
#[derive(Debug)]
pub enum EnsembleError {
    ModuleParse(ParseError),
    Compile(CompileError),
    Launch(SimError),
    Globals(AllocError),
    ArgFile(ArgFileError),
    /// thread_limit not divisible by the packed per-block instance count.
    BadPacking {
        thread_limit: u32,
        per_block: u32,
    },
    /// `-n` asked for more instances than the argument file has lines and
    /// cycling was not requested.
    ArgCountMismatch {
        instances: u32,
        lines: usize,
    },
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::ModuleParse(e) => write!(f, "module parse error: {e}"),
            EnsembleError::Compile(e) => write!(f, "compilation failed: {e}"),
            EnsembleError::Launch(e) => write!(f, "{e}"),
            EnsembleError::Globals(e) => write!(f, "global allocation failed: {e}"),
            EnsembleError::ArgFile(e) => write!(f, "{e}"),
            EnsembleError::BadPacking {
                thread_limit,
                per_block,
            } => write!(
                f,
                "thread limit {thread_limit} is not divisible by {per_block} packed instances"
            ),
            EnsembleError::ArgCountMismatch { instances, lines } => write!(
                f,
                "ensemble of {instances} instances needs {instances} argument lines but the \
                 argument file has only {lines}; pass --cycle-args to reuse lines modulo"
            ),
        }
    }
}

/// Validate that the argument file can feed `num_instances` instances:
/// one line per instance, unless `cycle` explicitly allows reusing lines
/// modulo (the historical default, now opt-in via `--cycle-args`).
pub fn ensure_arg_capacity(
    arg_lines: &[Vec<String>],
    num_instances: u32,
    cycle: bool,
) -> Result<(), EnsembleError> {
    if arg_lines.is_empty() {
        return Err(EnsembleError::ArgFile(ArgFileError::Empty));
    }
    if !cycle && arg_lines.len() < num_instances as usize {
        return Err(EnsembleError::ArgCountMismatch {
            instances: num_instances,
            lines: arg_lines.len(),
        });
    }
    Ok(())
}

impl std::error::Error for EnsembleError {}

/// The paper's contribution: launch `num_instances` concurrent instances of
/// `app` in **one kernel**, instance `i` mapped to team `i`, each with its
/// own argv line (a file with fewer lines than instances is an error
/// unless [`EnsembleOptions::cycle_args`] opts into modulo reuse).
///
/// Equivalent of the Fig. 4 loader region:
/// ```c
/// #pragma omp target teams distribute num_teams(N) thread_limit(T) \
///         map(from: Ret[:NI])
/// for (int I = 0; I < NI; ++I)
///     Ret[I] = __user_main(Argc[I], &Argv[I][0]);
/// ```
pub fn run_ensemble(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    services: HostServices,
) -> Result<EnsembleResult, EnsembleError> {
    run_ensemble_traced(
        gpu,
        app,
        arg_lines,
        opts,
        services,
        &mut Recorder::disabled(),
    )
}

/// [`run_ensemble`] with an observability [`Recorder`]. When the recorder
/// is enabled, the launch records the loader timeline (argument H2D, the
/// kernel envelope, result D2H), the full device schedule (one lane per
/// SM, one span per block and per team phase), per-instance lifecycle
/// markers and RPC totals. With a disabled recorder the code path is
/// identical to the untraced one: spans cost a single branch and the
/// timing engine skips timeline collection entirely.
pub fn run_ensemble_traced(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    services: HostServices,
    obs: &mut Recorder,
) -> Result<EnsembleResult, EnsembleError> {
    run_ensemble_injected(
        gpu,
        app,
        arg_lines,
        opts,
        services,
        obs,
        LaunchFaults::default(),
    )
}

/// Faults to inject into one ensemble launch. The default (no hooks, no
/// budget) is pure bookkeeping: [`run_ensemble_injected`] with an empty
/// `LaunchFaults` is bit-identical to [`run_ensemble_traced`].
#[derive(Default)]
pub struct LaunchFaults<'a> {
    /// Per-team fault: called once per global team id at launch.
    pub team_fault: Option<&'a dyn Fn(u32) -> Option<InjectedTeamFault>>,
    /// Server-side RPC interceptor (runs before the service handler, so
    /// faulted calls have no host side effects).
    pub rpc_fault: Option<RpcFaultHook>,
    /// Watchdog: per-instance cycle budget; teams still running past it
    /// are reaped with [`KernelError::Timeout`].
    pub cycle_budget: Option<f64>,
}

/// [`run_ensemble_traced`] with deterministic fault injection — the
/// substrate of the resilient driver (`dgc-fault`). All injection is
/// opt-in per hook; absent hooks leave the launch untouched.
pub fn run_ensemble_injected(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    services: HostServices,
    obs: &mut Recorder,
    faults: LaunchFaults<'_>,
) -> Result<EnsembleResult, EnsembleError> {
    let n = opts.num_instances.max(1);
    ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
    let traced = obs.is_enabled();
    if traced {
        obs.name_process(PID_HOST, "loader");
        obs.name_thread(PID_HOST, 0, "timeline");
    }

    // Compile once; all instances share the device image.
    let module = Module::parse(&app.module_text).map_err(EnsembleError::ModuleParse)?;
    let mut image = compile(module, &opts.compiler).map_err(EnsembleError::Compile)?;
    inject_main_wrapper(&mut image.module);

    // Per-instance argv: argv[0] + the instance's argument line.
    let argvs: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let line = &arg_lines[i as usize % arg_lines.len()];
            std::iter::once(app.name.to_string())
                .chain(line.iter().cloned())
                .collect()
        })
        .collect();

    // Map all instances' arguments to the device (StringCache of Fig. 4).
    let argv_bytes: u64 = argvs
        .iter()
        .flat_map(|a| a.iter())
        .map(|s| s.len() as u64 + 1)
        .sum();
    let h2d_s = gpu
        .transfers
        .record(TransferDirection::HostToDevice, argv_bytes);
    let mut transfer_seconds = h2d_s;
    if traced {
        obs.span_args(
            PID_HOST,
            0,
            "h2d argv",
            "loader",
            0.0,
            h2d_s * 1e6,
            vec![("bytes".into(), Value::U64(argv_bytes))],
        );
    }

    let device_globals = alloc_device_globals(gpu, &image).map_err(EnsembleError::Globals)?;
    if traced {
        obs.instant(PID_HOST, 0, "alloc globals", "loader", h2d_s * 1e6);
    }

    let (teams_per_block, lanes_per_team) = match opts.mapping {
        MappingStrategy::OnePerTeam => (1u32, opts.thread_limit),
        MappingStrategy::Packed { per_block } => {
            if per_block == 0 || !opts.thread_limit.is_multiple_of(per_block) {
                gpu.mem.free_by_tag(GLOBALS_TAG);
                return Err(EnsembleError::BadPacking {
                    thread_limit: opts.thread_limit,
                    per_block,
                });
            }
            (per_block, opts.thread_limit / per_block)
        }
    };

    let footprint = argvs
        .iter()
        .map(|a| app.footprint_scale.map(|f| f(a)).unwrap_or(1.0))
        .fold(1.0f64, f64::max);

    // Live monitoring (pure observation): when a [`MonitorSink`] hangs
    // off the recorder, the launch streams team completions and RPC
    // round trips into it as they happen and reports per-instance
    // outcomes, heap occupancy and utilization once computed. Sinks only
    // receive copies of already-computed values — simulated results stay
    // bit-identical with monitoring on or off.
    let monitor = obs.monitor().cloned();
    let team_hook = monitor
        .clone()
        .map(|m| move |done: u32, total: u32| m.team_done(0, done, total));
    let rpc_observer = monitor.clone().map(|m| {
        std::sync::Arc::new(move |_service: u32, _instance: u32, errored: bool| {
            m.rpc_activity(1, u64::from(errored));
        }) as host_rpc::RpcObserver
    });

    let (server, client) = RpcServer::spawn_observed(services, faults.rpc_fault, rpc_observer);
    let kernel_name = format!("{}-x{}", app.name, n);
    let mut spec = KernelSpec::new(&kernel_name, n, lanes_per_team);
    spec.teams_per_block = teams_per_block;
    spec.rpc_services = Some(image.rpc_services.iter().copied().collect());
    spec.footprint_multiplier = footprint;
    spec.fault_of_team = faults.team_fault;
    spec.cycle_budget = faults.cycle_budget;
    // Schedule detail and stall attribution are pure bookkeeping (they
    // never perturb timing), so the ensemble path always collects both:
    // detail feeds the span graph's critical chain, stalls feed the
    // metrics rollup. Traces stay gated by the recorder.
    spec.collect_detail = true;
    spec.collect_stalls = true;
    spec.sample_interval = opts.sample_interval;
    spec.on_team_done = team_hook.as_ref().map(|h| h as &dyn Fn(u32, u32));

    // Heap high-water marks are per launch: restart them from the live
    // bytes (module globals) so instance peaks measure this kernel only.
    gpu.mem.reset_tag_peaks();
    // Free-list fallbacks accumulate across launches on a reused device:
    // snapshot so the rollup reports this launch's count alone.
    let fallbacks_before = gpu.mem.stats().alloc_fallbacks;

    let main_fn = app.main;
    let image_ref = &image;
    let dg_ref = &device_globals;
    let argvs_ref = &argvs;
    let mut hook = make_rpc_hook(&client);
    let launch = gpu.launch(&spec, Some(&mut hook), move |team| {
        let i = team.team_id();
        let globals = build_globals(team, image_ref, dg_ref)?;
        let cx = AppContext {
            argv: argvs_ref[i as usize].clone(),
            globals,
            instance: i,
            num_instances: n,
        };
        main_fn(team, &cx)
    });

    // Heap occupancy while the kernel ran, read before instance teardown
    // frees the tags — the timeline's heap counter and the schema-v6
    // launch rollup.
    let heap_bytes = gpu.mem.stats().bytes_in_use;
    let heap = HeapUsage {
        peak_bytes: vec![gpu.mem.stats().peak_bytes_in_use],
        fragmentation: gpu.mem.fragmentation(),
        alloc_fallbacks: gpu.mem.stats().alloc_fallbacks - fallbacks_before,
    };

    // Instance teardown: free every instance heap and the module globals.
    for i in 0..n {
        gpu.mem.free_by_tag(i);
    }
    gpu.mem.free_by_tag(GLOBALS_TAG);
    let services = server.shutdown();
    let launch = launch.map_err(EnsembleError::Launch)?;

    // map(from: Ret[:NI]).
    let d2h_s = gpu
        .transfers
        .record(TransferDirection::DeviceToHost, 4 * n as u64);
    transfer_seconds += d2h_s;

    let instances: Vec<InstanceOutcome> = launch
        .team_outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| match o {
            TeamOutcome::Return(c) => InstanceOutcome {
                exit_code: Some(services.exit_code_of(i as u32).unwrap_or(*c)),
                error: None,
                oom: false,
                timed_out: false,
            },
            TeamOutcome::Trap(e) => InstanceOutcome {
                exit_code: services.exit_code_of(i as u32),
                error: Some(e.to_string()),
                oom: matches!(e, KernelError::Alloc(AllocError::OutOfMemory { .. })),
                timed_out: matches!(e, KernelError::Timeout { .. }),
            },
        })
        .collect();
    let stdout = (0..n).map(|i| services.stdout_of(i).to_string()).collect();

    let kernel_time_s = launch.report.sim_time_s;
    let instance_end_times_s: Vec<f64> = (0..n)
        .map(|i| {
            let block = (i / teams_per_block) as usize;
            gpu.spec
                .cycles_to_seconds(launch.report.block_end_cycles[block])
        })
        .collect();

    // ---- Per-instance metrics rollup. ----
    let cycle_s = gpu.spec.cycles_to_seconds(1.0);
    let metrics: Vec<InstanceMetrics> = (0..n)
        .map(|i| {
            let block = (i / teams_per_block) as usize;
            let summary = &launch.team_summaries[i as usize];
            let outcome = &instances[i as usize];
            InstanceMetrics {
                instance: i,
                exit_code: outcome.exit_code,
                trapped: outcome.error.is_some(),
                oom: outcome.oom,
                timed_out: outcome.timed_out,
                attempt: 0,
                device: 0,
                end_time_s: instance_end_times_s[i as usize],
                cycles: launch.report.block_end_cycles[block],
                warp_insts: summary.insts,
                useful_bytes: summary.useful_bytes,
                moved_bytes: summary.moved_bytes,
                sectors: summary.sectors,
                heap_peak_bytes: gpu.mem.tag_peak_bytes(i),
                rpc: RpcCallCounts::from(services.stats_of(i)),
                rpc_stall_s: summary.rpc_calls as f64 * gpu.timing.rpc_cycles_per_call * cycle_s,
                stall: launch
                    .stalls
                    .as_ref()
                    .map(|s| s.blocks[block])
                    .unwrap_or_default(),
            }
        })
        .collect();

    // ---- Utilization timeline (opt-in sampling). ----
    // Built whether or not tracing is on: the metrics export carries the
    // series too. Kernel cycles land on the launch timeline after argv
    // H2D and launch overhead, exactly like the recorded device schedule.
    let device_offset_us = h2d_s * 1e6 + gpu.spec.launch_overhead_us;
    let upc_us = cycle_s * 1e6;
    let timeline = launch
        .timeline
        .as_ref()
        .map(|tl| LaunchTimeline::from_samples(tl, upc_us, device_offset_us, 0, heap_bytes))
        .unwrap_or_default();

    // ---- Live-monitor emission (values already computed above). ----
    if let Some(m) = &monitor {
        for (i, o) in instances.iter().enumerate() {
            m.instance_done(0, o.succeeded(), instance_end_times_s[i]);
        }
        m.kernel_launch(0, n, kernel_time_s);
        let heap = gpu.mem.stats();
        m.heap_sample(0, heap_bytes, heap.peak_bytes_in_use, gpu.mem.capacity());
        if let Ok(mean) = crate::stats::utilization_mean(&timeline.issue_rates()) {
            m.utilization_sample(0, mean);
        }
    }

    // ---- Timeline recording. ----
    if traced {
        let kernel_start_us = h2d_s * 1e6;
        let kernel_us = launch.report.sim_time_s * 1e6;
        obs.span_args(
            PID_HOST,
            0,
            &kernel_name,
            "kernel",
            kernel_start_us,
            kernel_us,
            vec![
                ("blocks".into(), Value::U64(launch.report.blocks as u64)),
                ("waves".into(), Value::U64(launch.report.waves as u64)),
            ],
        );
        if let Some(sched) = &launch.schedule {
            record_schedule(obs, sched, upc_us, device_offset_us);
        }
        timeline.emit_counters(obs);
        obs.span(
            PID_HOST,
            0,
            "d2h results",
            "loader",
            kernel_start_us + kernel_us,
            d2h_s * 1e6,
        );
        for m in &metrics {
            let lane = m.instance + 1;
            obs.name_thread(PID_HOST, lane, &format!("instance {}", m.instance));
            let name = if m.timed_out {
                "timeout".to_string()
            } else if m.oom {
                "oom".to_string()
            } else if m.trapped {
                "trap".to_string()
            } else {
                format!("exit {}", m.exit_code.unwrap_or(0))
            };
            obs.instant_args(
                PID_HOST,
                lane,
                &name,
                "lifecycle",
                device_offset_us + m.cycles * upc_us,
                vec![("rpc_calls".into(), Value::U64(m.rpc.total()))],
            );
        }
        let totals = services.stats();
        obs.instant_args(
            PID_HOST,
            0,
            "rpc totals",
            "rpc",
            kernel_start_us + kernel_us,
            vec![
                ("stdio".into(), Value::U64(totals.stdio_calls)),
                ("fs".into(), Value::U64(totals.fs_calls)),
                ("clock".into(), Value::U64(totals.clock_calls)),
                ("exit".into(), Value::U64(totals.exit_calls)),
                ("errors".into(), Value::U64(totals.errors)),
            ],
        );
    }

    // ---- Span-graph node. ----
    // `total_s` is the *exact* value placed in `total_time_s` below —
    // replaying the graph must perform the driver's own additions.
    let total_time_s = kernel_time_s + transfer_seconds;
    let mut graph = SpanGraph::default();
    graph.push_launch(LaunchNode {
        kernel: kernel_name,
        device: 0,
        round: 0,
        concurrent: false,
        start_s: 0.0,
        h2d_s,
        kernel_s: kernel_time_s,
        d2h_s,
        total_s: total_time_s,
        overhead_s: gpu.spec.launch_overhead_us * 1e-6,
        cycle_s,
        waves: launch.report.waves,
        teams_per_block,
        instances: (0..n).collect(),
        block_stalls: launch
            .stalls
            .as_ref()
            .map(|s| s.blocks.clone())
            .unwrap_or_default(),
        wave_spans: launch
            .schedule
            .as_ref()
            .map(|s| s.wave_spans())
            .unwrap_or_default(),
        chain: launch
            .schedule
            .as_ref()
            .map(CriticalHop::chain_from_schedule)
            .unwrap_or_default(),
    });

    Ok(EnsembleResult {
        instances,
        stdout,
        report: launch.report,
        kernel_time_s,
        total_time_s,
        instance_end_times_s,
        rpc_stats: services.stats(),
        metrics,
        timeline,
        graph,
        heap,
    })
}

/// Batched ensemble execution — our extension past the paper's §4.3
/// memory limitation.
///
/// When `N` concurrent instances exceed device memory (Page-Rank beyond 4
/// on a 40 GB A100), the ensemble still runs as `ceil(N / batch)`
/// *sequential* kernel launches of at most `batch` instances each: device
/// memory holds one batch at a time, so any `N` completes. Total time is
/// the sum of the batch kernels — throughput saturates at the largest
/// batch that fits, trading the paper's hard OOM wall for a flat scaling
/// ceiling.
pub fn run_ensemble_batched(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
) -> Result<EnsembleResult, EnsembleError> {
    run_ensemble_batched_traced(gpu, app, arg_lines, opts, batch, &mut Recorder::disabled())
}

/// [`run_ensemble_batched`] with an observability [`Recorder`]. Batches
/// land end-to-end on one timeline: before each batch the recorder's base
/// offset advances by the elapsed simulated time, and instance metrics
/// are renumbered to global instance ids with accumulated end times.
pub fn run_ensemble_batched_traced(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    obs: &mut Recorder,
) -> Result<EnsembleResult, EnsembleError> {
    run_ensemble_batched_progress(gpu, app, arg_lines, opts, batch, obs, &mut |_, _| {})
}

/// [`run_ensemble_batched_traced`] with a progress callback: after each
/// batch completes, `progress(done, total)` reports how many instances
/// have finished. The callback drives the CLI's `--progress` ETA line; a
/// no-op closure makes this identical to the plain batched driver.
pub fn run_ensemble_batched_progress(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    obs: &mut Recorder,
    progress: &mut dyn FnMut(u32, u32),
) -> Result<EnsembleResult, EnsembleError> {
    assert!(batch >= 1, "batch size must be at least 1");
    let n = opts.num_instances.max(1);
    if n <= batch {
        let res = run_ensemble_traced(gpu, app, arg_lines, opts, HostServices::default(), obs)?;
        progress(n, n);
        return Ok(res);
    }
    ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;

    let mut instances = Vec::with_capacity(n as usize);
    let mut stdout = Vec::with_capacity(n as usize);
    let mut end_times = Vec::with_capacity(n as usize);
    let mut metrics: Vec<InstanceMetrics> = Vec::with_capacity(n as usize);
    let mut kernel_time_s = 0.0;
    let mut total_time_s = 0.0;
    let mut rpc_stats = RpcStats::default();
    let mut timeline = LaunchTimeline::default();
    let mut graph = SpanGraph::default();
    let mut heap = HeapUsage::default();
    let mut last_report = None;
    let base_us = obs.base_us();

    let mut start = 0u32;
    while start < n {
        let count = batch.min(n - start);
        // This batch's argument lines, preserving the global cycling.
        let batch_lines: Vec<Vec<String>> = (start..start + count)
            .map(|i| arg_lines[i as usize % arg_lines.len()].clone())
            .collect();
        let batch_opts = EnsembleOptions {
            num_instances: count,
            ..opts.clone()
        };
        obs.set_base_us(base_us + total_time_s * 1e6);
        let res = run_ensemble_traced(
            gpu,
            app,
            &batch_lines,
            &batch_opts,
            HostServices::default(),
            obs,
        )?;
        instances.extend(res.instances);
        stdout.extend(res.stdout);
        // Batches run back to back: offset finish times by elapsed time.
        end_times.extend(res.instance_end_times_s.iter().map(|t| kernel_time_s + t));
        metrics.extend(res.metrics.into_iter().map(|mut m| {
            m.instance += start;
            m.end_time_s += kernel_time_s;
            m
        }));
        // The batch's utilization series lands after the elapsed batches,
        // in lockstep with the recorder base shift above.
        let mut batch_tl = res.timeline;
        batch_tl.shift_us(total_time_s * 1e6);
        timeline.merge(batch_tl);
        // Span graph: shift onto the launch timeline, renumber the
        // batch-local instances to global ids, and append in
        // accumulation order — replay then folds `total_s` addends
        // exactly like the `total_time_s` accumulator below.
        let mut batch_graph = res.graph;
        batch_graph.shift_start_s(total_time_s);
        let id_map: Vec<u32> = (start..start + count).collect();
        batch_graph.remap_instances(&id_map);
        graph.merge(batch_graph);
        kernel_time_s += res.kernel_time_s;
        total_time_s += res.total_time_s;
        rpc_stats.merge(&res.rpc_stats);
        heap.absorb(&res.heap);
        last_report = Some(res.report);
        start += count;
        progress(start, n);
    }
    obs.set_base_us(base_us);
    Ok(EnsembleResult {
        instances,
        stdout,
        report: last_report.expect("at least one batch ran"),
        kernel_time_s,
        total_time_s,
        instance_end_times_s: end_times,
        rpc_stats,
        metrics,
        timeline,
        graph,
        heap,
    })
}

/// The enhanced loader's command line (paper §3.2): `-f <file>`,
/// `-n <num instances>`, `-t <thread limit>`, plus extensions:
/// `--pack <M>` selects the §3.1 packed mapping, `--batch <B>` runs the
/// ensemble as sequential batches of `B` instances (memory-wall escape),
/// `--trace-out <file>` / `--metrics-out <file>` export a Chrome trace and
/// JSONL metrics, `--quiet` suppresses per-instance output blocks,
/// `--devices <M> --placement <P>` shard the ensemble across a simulated
/// fleet, and `--cycle-args` permits reusing argument lines modulo.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleCliArgs {
    pub arg_file: String,
    /// Defaults to the number of lines in the argument file when absent.
    pub num_instances: Option<u32>,
    pub thread_limit: u32,
    pub pack: u32,
    /// `0` means unbatched (one concurrent launch).
    pub batch: u32,
    /// Chrome trace-event JSON output path.
    pub trace_out: Option<String>,
    /// JSONL metrics output path.
    pub metrics_out: Option<String>,
    /// Suppress per-instance stdout blocks.
    pub quiet: bool,
    /// Fault-plan JSON path (`--faults`); enables the resilient driver.
    pub faults: Option<String>,
    /// Max launch attempts per instance under the resilient driver.
    pub max_attempts: u32,
    /// Halve the concurrent batch on device OOM instead of giving up.
    pub auto_batch: bool,
    /// Watchdog budget in device cycles per instance.
    pub instance_timeout: Option<f64>,
    /// Abort remaining work as soon as one instance exhausts its attempts.
    pub fail_fast: bool,
    /// Seed for the resilient driver's opt-in backoff jitter
    /// (`--retry-jitter <seed>`); `None` keeps the synchronized waits and
    /// every existing golden bit-identical.
    pub retry_jitter: Option<u64>,
    /// Number of simulated devices to shard the ensemble across
    /// (`--devices`, default 1 = the single-device paths).
    pub devices: u32,
    /// Placement policy name for sharded launches (`--placement`;
    /// `round-robin`, `greedy` or `lpt`). Kept as a string here — the
    /// policies live in `dgc-sched`, which sits above this crate.
    pub placement: String,
    /// Reuse argument lines modulo when `-n` exceeds the file's line
    /// count (`--cycle-args`).
    pub cycle_args: bool,
    /// Utilization sampling interval in device cycles. `--timeline`
    /// enables sampling at [`DEFAULT_SAMPLE_INTERVAL`];
    /// `--sample-interval <cycles>` sets an explicit interval (and
    /// implies `--timeline`). `None` disables sampling entirely.
    pub sample_interval: Option<f64>,
    /// Print per-launch progress lines to stderr (`--progress`);
    /// `--quiet` wins when both are given.
    pub progress: bool,
    /// Span-graph insight report output path (`--insight-out`): critical
    /// path, blame table and Gantt summary rendered by `dgc-insight`.
    pub insight_out: Option<String>,
    /// Folded-stack flamegraph output path (`--flame-out`),
    /// `inferno`-compatible text format.
    pub flame_out: Option<String>,
    /// OpenMetrics snapshot log path (`--monitor-out`): stream live
    /// run metrics to this file from a background monitor thread.
    pub monitor_out: Option<String>,
    /// Wall-clock interval between monitor snapshots in milliseconds
    /// (`--monitor-interval`, default [`DEFAULT_MONITOR_INTERVAL_MS`]).
    pub monitor_interval_ms: u64,
    /// Memory-aware placement and per-team free lists (default on;
    /// `--no-mem-aware` restores the bit-identical legacy paths: first-fit
    /// only, capacity discovered by OOM-then-halve instead of pilot peaks).
    pub mem_aware: bool,
}

/// Sampling interval `--timeline` uses when `--sample-interval` does not
/// override it: one sample every 50 000 device cycles (~35 µs at A100
/// clocks) — fine enough to resolve waves, coarse enough that even long
/// sweeps stay under a few thousand samples.
pub const DEFAULT_SAMPLE_INTERVAL: f64 = 50_000.0;

/// Default `--monitor-interval`: one snapshot per second of wall time.
/// Simulated runs usually finish in well under a second, so the default
/// yields the guaranteed final snapshot plus periodic ones only for
/// genuinely long sweeps.
pub const DEFAULT_MONITOR_INTERVAL_MS: u64 = 1000;

/// Format the `--progress` ETA column from the instances remaining and
/// the measured completion rate. A rate of ~zero (nothing completed
/// yet, or a clock with no resolution) would print `inf`/`NaN` seconds;
/// those render as `--` instead.
pub fn format_eta_s(remaining: u64, rate_per_s: f64) -> String {
    let eta_s = remaining as f64 / rate_per_s;
    if rate_per_s > 1e-9 && eta_s.is_finite() {
        format!("{eta_s:.1} s")
    } else {
        "--".to_string()
    }
}

/// CLI parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    MissingValue(&'static str),
    BadValue(&'static str, String),
    UnknownFlag(String),
    MissingArgFile,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::BadValue(flag, v) => write!(f, "bad value '{v}' for {flag}"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            CliError::MissingArgFile => write!(f, "-f <arguments file> is required"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parse the enhanced loader's command line, e.g.
/// `./user_app_gpu -f arguments.txt -n 4 -t 128` (paper Fig. 5c).
pub fn parse_ensemble_cli(args: &[String]) -> Result<EnsembleCliArgs, CliError> {
    let mut arg_file = None;
    let mut num_instances = None;
    let mut thread_limit = 128u32;
    let mut pack = 1u32;
    let mut batch = 0u32;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut quiet = false;
    let mut faults = None;
    let mut max_attempts = 3u32;
    let mut auto_batch = false;
    let mut instance_timeout = None;
    let mut fail_fast = false;
    let mut retry_jitter = None;
    let mut devices = 1u32;
    let mut placement = "round-robin".to_string();
    let mut cycle_args = false;
    let mut sample_interval = None;
    let mut progress = false;
    let mut insight_out = None;
    let mut flame_out = None;
    let mut monitor_out = None;
    let mut monitor_interval_ms = DEFAULT_MONITOR_INTERVAL_MS;
    let mut mem_aware = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-f" => {
                arg_file = Some(it.next().ok_or(CliError::MissingValue("-f"))?.to_string());
            }
            "-n" => {
                let v = it.next().ok_or(CliError::MissingValue("-n"))?;
                num_instances = Some(v.parse().map_err(|_| CliError::BadValue("-n", v.clone()))?);
            }
            "-t" => {
                let v = it.next().ok_or(CliError::MissingValue("-t"))?;
                thread_limit = v.parse().map_err(|_| CliError::BadValue("-t", v.clone()))?;
            }
            "--pack" => {
                let v = it.next().ok_or(CliError::MissingValue("--pack"))?;
                pack = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--pack", v.clone()))?;
            }
            "--batch" => {
                let v = it.next().ok_or(CliError::MissingValue("--batch"))?;
                batch = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--batch", v.clone()))?;
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--trace-out"))?
                        .to_string(),
                );
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--metrics-out"))?
                        .to_string(),
                );
            }
            "--quiet" | "-q" => quiet = true,
            "--faults" => {
                faults = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--faults"))?
                        .to_string(),
                );
            }
            "--max-attempts" => {
                let v = it.next().ok_or(CliError::MissingValue("--max-attempts"))?;
                max_attempts = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--max-attempts", v.clone()))?;
                if max_attempts == 0 {
                    return Err(CliError::BadValue("--max-attempts", v.clone()));
                }
            }
            "--auto-batch" => auto_batch = true,
            "--instance-timeout" => {
                let v = it
                    .next()
                    .ok_or(CliError::MissingValue("--instance-timeout"))?;
                let cycles: f64 = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--instance-timeout", v.clone()))?;
                if !cycles.is_finite() || cycles <= 0.0 {
                    return Err(CliError::BadValue("--instance-timeout", v.clone()));
                }
                instance_timeout = Some(cycles);
            }
            "--fail-fast" => fail_fast = true,
            "--retry-jitter" => {
                let v = it.next().ok_or(CliError::MissingValue("--retry-jitter"))?;
                retry_jitter = Some(
                    v.parse()
                        .map_err(|_| CliError::BadValue("--retry-jitter", v.clone()))?,
                );
            }
            "--devices" => {
                let v = it.next().ok_or(CliError::MissingValue("--devices"))?;
                devices = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--devices", v.clone()))?;
                if devices == 0 {
                    return Err(CliError::BadValue("--devices", v.clone()));
                }
            }
            "--placement" => {
                placement = it
                    .next()
                    .ok_or(CliError::MissingValue("--placement"))?
                    .to_string();
            }
            "--cycle-args" => cycle_args = true,
            "--timeline" => {
                sample_interval.get_or_insert(DEFAULT_SAMPLE_INTERVAL);
            }
            "--sample-interval" => {
                let v = it
                    .next()
                    .ok_or(CliError::MissingValue("--sample-interval"))?;
                let cycles: f64 = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--sample-interval", v.clone()))?;
                if !cycles.is_finite() || cycles <= 0.0 {
                    return Err(CliError::BadValue("--sample-interval", v.clone()));
                }
                sample_interval = Some(cycles);
            }
            "--progress" => progress = true,
            "--insight-out" => {
                insight_out = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--insight-out"))?
                        .to_string(),
                );
            }
            "--flame-out" => {
                flame_out = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--flame-out"))?
                        .to_string(),
                );
            }
            "--monitor-out" => {
                monitor_out = Some(
                    it.next()
                        .ok_or(CliError::MissingValue("--monitor-out"))?
                        .to_string(),
                );
            }
            "--monitor-interval" => {
                let v = it
                    .next()
                    .ok_or(CliError::MissingValue("--monitor-interval"))?;
                monitor_interval_ms = v
                    .parse()
                    .map_err(|_| CliError::BadValue("--monitor-interval", v.clone()))?;
                if monitor_interval_ms == 0 {
                    return Err(CliError::BadValue("--monitor-interval", v.clone()));
                }
            }
            "--mem-aware" => mem_aware = true,
            "--no-mem-aware" => mem_aware = false,
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    Ok(EnsembleCliArgs {
        arg_file: arg_file.ok_or(CliError::MissingArgFile)?,
        num_instances,
        thread_limit,
        pack,
        batch,
        trace_out,
        metrics_out,
        quiet,
        faults,
        max_attempts,
        auto_batch,
        instance_timeout,
        fail_fast,
        retry_jitter,
        devices,
        placement,
        cycle_args,
        sample_interval,
        progress,
        insight_out,
        flame_out,
        monitor_out,
        monitor_interval_ms,
        mem_aware,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::argfile::parse_arg_file;
    use device_libc::dl_printf;
    use gpu_sim::TeamCtx;

    const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

    /// Streams `n` doubles (from `-n <n>`), prints a digest.
    fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
        let n: u64 = cx
            .argv
            .iter()
            .position(|a| a == "-n")
            .and_then(|p| cx.argv.get(p + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000);
        let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
        team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
        let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
        let instance = cx.instance;
        team.serial("print", |lane| {
            dl_printf(
                lane,
                "instance %d sum %.1f\n",
                &[instance.into(), sum.into()],
            )?;
            Ok(())
        })?;
        Ok(0)
    }

    fn app() -> HostApp {
        HostApp::new("bench", MODULE, stream_main)
    }

    fn lines(text: &str) -> Vec<Vec<String>> {
        parse_arg_file(text).unwrap()
    }

    #[test]
    fn four_instances_get_own_args_and_streams() {
        let mut gpu = Gpu::a100();
        let arg_lines = lines("-n 100\n-n 200\n-n 300\n-n 400\n");
        let opts = EnsembleOptions {
            num_instances: 4,
            thread_limit: 32,
            ..Default::default()
        };
        let res =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        assert!(res.all_succeeded());
        assert_eq!(res.report.blocks, 4);
        let sum_of = |n: u64| (0..n).map(|i| i as f64).sum::<f64>();
        assert_eq!(
            res.stdout[0],
            format!("instance 0 sum {:.1}\n", sum_of(100))
        );
        assert_eq!(
            res.stdout[3],
            format!("instance 3 sum {:.1}\n", sum_of(400))
        );
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn metrics_capture_per_instance_work_and_heap() {
        let mut gpu = Gpu::a100();
        let arg_lines = lines("-n 100\n-n 400\n");
        let opts = EnsembleOptions {
            num_instances: 2,
            thread_limit: 32,
            ..Default::default()
        };
        let res =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        assert_eq!(res.metrics.len(), 2);
        let (m0, m1) = (&res.metrics[0], &res.metrics[1]);
        assert_eq!((m0.instance, m1.instance), (0, 1));
        assert_eq!(m0.exit_code, Some(0));
        assert!(!m0.trapped && !m0.oom);
        // Instance 1 streams 4× the data: more work, bigger heap peak.
        assert!(m1.warp_insts > m0.warp_insts);
        assert!(m1.moved_bytes > m0.moved_bytes);
        assert!(m0.heap_peak_bytes >= 8 * 100);
        assert!(m1.heap_peak_bytes >= 8 * 400);
        // One printf round trip each, demultiplexed per instance.
        assert_eq!(m0.rpc.stdio, 1);
        assert_eq!(m1.rpc.stdio, 1);
        assert!(m0.rpc_stall_s > 0.0);
        assert_eq!(m0.end_time_s, res.instance_end_times_s[0]);
        // Stall attribution rides along: buckets partition each
        // instance's cycles exactly.
        assert_eq!(m0.stall.total(), m0.cycles);
        assert_eq!(m1.stall.total(), m1.cycles);
        assert!(m0.stall.rpc > 0.0, "printf stall missing: {:?}", m0.stall);
        // Launch rollup agrees with the instance outcomes.
        let lm = res.launch_metrics();
        assert_eq!(lm.schema, dgc_obs::METRICS_SCHEMA_VERSION);
        assert_eq!(lm.instances, 2);
        assert_eq!((lm.failed, lm.oom), (0, 0));
        assert_eq!(lm.rpc_total, res.rpc_stats.total());
        // Percentiles come from the log2 histogram: p50 ≤ p99, and p99
        // bounds the slowest instance from above within its 2× bucket.
        assert!(lm.latency.p50_s <= lm.latency.p99_s);
        let max_end = res.instance_end_times_s.iter().cloned().fold(0.0, f64::max);
        assert!(lm.latency.p99_s >= max_end * 0.99);
        assert!(lm.latency.p99_s <= max_end * 2.0);
        assert!(lm.rpc_stall.p50_s > 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_exports_timeline() {
        let arg_lines = lines("-n 100\n-n 200\n");
        let opts = EnsembleOptions {
            num_instances: 2,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        let mut gpu = Gpu::a100();
        let plain =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        let mut gpu = Gpu::a100();
        let mut obs = Recorder::enabled();
        let traced = run_ensemble_traced(
            &mut gpu,
            &app(),
            &arg_lines,
            &opts,
            HostServices::default(),
            &mut obs,
        )
        .unwrap();
        // Tracing must not perturb the simulation.
        assert_eq!(plain.report, traced.report);
        assert_eq!(plain.stdout, traced.stdout);
        assert_eq!(plain.metrics, traced.metrics);
        // The timeline has the loader envelope and device spans.
        let cats: Vec<&str> = obs.events().iter().map(|e| e.cat.as_str()).collect();
        for want in ["loader", "kernel", "block", "phase", "lifecycle", "rpc"] {
            assert!(cats.contains(&want), "missing {want} events in {cats:?}");
        }
        // Batched runs renumber instances and keep one timeline.
        let mut gpu = Gpu::a100();
        let mut obs = Recorder::enabled();
        let opts4 = EnsembleOptions {
            num_instances: 4,
            ..opts.clone()
        };
        let batched =
            run_ensemble_batched_traced(&mut gpu, &app(), &arg_lines, &opts4, 2, &mut obs).unwrap();
        let ids: Vec<u32> = batched.metrics.iter().map(|m| m.instance).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(obs.base_us(), 0.0);
        let kernel_spans = obs.events().iter().filter(|e| e.cat == "kernel").count();
        assert_eq!(kernel_spans, 2);
    }

    #[test]
    fn sampling_is_opt_in_and_bit_identical() {
        let arg_lines = lines("-n 100\n-n 400\n");
        let base_opts = EnsembleOptions {
            num_instances: 2,
            thread_limit: 32,
            ..Default::default()
        };
        // Default run: no timeline, null rollups.
        let mut gpu = Gpu::a100();
        let plain = run_ensemble(
            &mut gpu,
            &app(),
            &arg_lines,
            &base_opts,
            HostServices::default(),
        )
        .unwrap();
        assert!(plain.timeline.is_empty());
        let lm = plain.launch_metrics();
        assert_eq!(lm.utilization_mean, None);
        assert_eq!(lm.utilization_p95, None);
        assert!(lm.timeline.is_empty());
        // Sampled run: identical simulation, plus a populated series.
        let opts = EnsembleOptions {
            sample_interval: Some(500.0),
            ..base_opts.clone()
        };
        let mut gpu = Gpu::a100();
        let sampled =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        assert_eq!(plain.report, sampled.report);
        assert_eq!(plain.metrics, sampled.metrics);
        assert_eq!(plain.stdout, sampled.stdout);
        assert!(!sampled.timeline.is_empty());
        // Timestamps advance strictly and sit past the loader prologue.
        let ts: Vec<f64> = sampled.timeline.points.iter().map(|p| p.t_us).collect();
        assert!(ts.windows(2).all(|w| w[1] > w[0]), "{ts:?}");
        assert!(ts[0] > 0.0);
        // The heap counter saw the instances' live allocations.
        assert!(sampled.timeline.points[0].heap_bytes >= 8 * 500);
        let lm = sampled.launch_metrics();
        assert_eq!(lm.timeline.len(), sampled.timeline.points.len());
        let mean = lm.utilization_mean.unwrap();
        let p95 = lm.utilization_p95.unwrap();
        assert!(mean > 0.0 && mean <= 1.0, "mean {mean}");
        // This workload is RPC-stall dominated, so most windows issue
        // nothing — p95 only has to be a valid rate, not positive.
        assert!((0.0..=1.0).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn single_sample_timeline_rollups_degenerate_to_that_sample() {
        // An interval longer than the kernel leaves only the flushed
        // final window: a one-point series whose mean and p95 rollups
        // both equal the single sample (nearest-rank p95 of n=1).
        let arg_lines = lines("-n 100\n-n 400\n");
        let opts = EnsembleOptions {
            num_instances: 2,
            thread_limit: 32,
            sample_interval: Some(1e12),
            ..Default::default()
        };
        let mut gpu = Gpu::a100();
        let res =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        assert_eq!(res.timeline.points.len(), 1);
        let rate = res.timeline.points[0].issue_rate;
        let lm = res.launch_metrics();
        assert_eq!(lm.utilization_mean, Some(rate));
        assert_eq!(lm.utilization_p95, Some(rate));
    }

    #[test]
    fn sampling_only_adds_counter_events_to_traces() {
        let arg_lines = lines("-n 100\n-n 200\n");
        let opts = EnsembleOptions {
            num_instances: 2,
            thread_limit: 32,
            ..Default::default()
        };
        let mut gpu = Gpu::a100();
        let mut obs_off = Recorder::enabled();
        run_ensemble_traced(
            &mut gpu,
            &app(),
            &arg_lines,
            &opts,
            HostServices::default(),
            &mut obs_off,
        )
        .unwrap();
        let mut gpu = Gpu::a100();
        let mut obs_on = Recorder::enabled();
        let opts_on = EnsembleOptions {
            sample_interval: Some(500.0),
            ..opts.clone()
        };
        run_ensemble_traced(
            &mut gpu,
            &app(),
            &arg_lines,
            &opts_on,
            HostServices::default(),
            &mut obs_on,
        )
        .unwrap();
        // The sampled trace is the plain trace plus counter tracks and
        // nothing else: stripping the `ph == 'C'` events recovers the
        // plain event stream exactly.
        assert!(obs_on.events().iter().any(|e| e.ph == 'C'));
        let stripped: Vec<_> = obs_on.events().iter().filter(|e| e.ph != 'C').collect();
        assert_eq!(stripped.len(), obs_off.events().len());
        for (on, off) in stripped.iter().zip(obs_off.events()) {
            assert_eq!(*on, off);
        }
    }

    #[test]
    fn arg_lines_cycle_when_fewer_than_instances() {
        let mut gpu = Gpu::a100();
        let arg_lines = lines("-n 50\n");
        let opts = EnsembleOptions {
            num_instances: 3,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        let res =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        assert!(res.all_succeeded());
        let expected = format!("sum {:.1}\n", (0..50).map(|i| i as f64).sum::<f64>());
        for s in &res.stdout {
            assert!(s.ends_with(&expected), "{s}");
        }
    }

    #[test]
    fn arg_shortfall_is_an_error_without_cycle_args() {
        let mut gpu = Gpu::a100();
        let arg_lines = lines("-n 50\n-n 60\n");
        let opts = EnsembleOptions {
            num_instances: 3,
            thread_limit: 32,
            ..Default::default()
        };
        let err = run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default())
            .expect_err("shortfall must be rejected");
        match &err {
            EnsembleError::ArgCountMismatch { instances, lines } => {
                assert_eq!((*instances, *lines), (3, 2));
            }
            other => panic!("expected ArgCountMismatch, got {other}"),
        }
        // The message names both counts and the escape hatch.
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('2'), "{msg}");
        assert!(msg.contains("--cycle-args"), "{msg}");
        // The batched path enforces the same contract before launching
        // anything.
        let opts8 = EnsembleOptions {
            num_instances: 8,
            ..opts.clone()
        };
        assert!(matches!(
            run_ensemble_batched(&mut gpu, &app(), &arg_lines, &opts8, 4),
            Err(EnsembleError::ArgCountMismatch {
                instances: 8,
                lines: 2
            })
        ));
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn ensemble_speedup_is_sublinear_but_real() {
        // The paper's headline property, end to end through the loader.
        let run_n = |n: u32| {
            let mut gpu = Gpu::a100();
            let opts = EnsembleOptions {
                num_instances: n,
                thread_limit: 32,
                cycle_args: true,
                ..Default::default()
            };
            run_ensemble(
                &mut gpu,
                &app(),
                &lines("-n 20000\n"),
                &opts,
                HostServices::default(),
            )
            .unwrap()
            .kernel_time_s
        };
        let t1 = run_n(1);
        let t16 = run_n(16);
        let speedup = crate::stats::relative_speedup(t1, 16, t16).unwrap();
        assert!(speedup > 4.0, "speedup {speedup}");
        assert!(speedup <= 16.0 + 1e-6, "speedup {speedup}");
    }

    #[test]
    fn heterogeneous_arguments_show_load_imbalance() {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 4,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        // One instance does 2000× the work of the others.
        let res = run_ensemble(
            &mut gpu,
            &app(),
            &lines("-n 100\n-n 100\n-n 100\n-n 200000\n"),
            &opts,
            HostServices::default(),
        )
        .unwrap();
        assert!(res.all_succeeded());
        assert_eq!(res.instance_end_times_s.len(), 4);
        assert!(
            res.load_imbalance() > 1.5,
            "imbalance = {}",
            res.load_imbalance()
        );
        // The slow instance is the last finisher.
        let max = res.instance_end_times_s.iter().cloned().fold(0.0, f64::max);
        assert_eq!(res.instance_end_times_s[3], max);

        // Homogeneous arguments are balanced.
        let res = run_ensemble(
            &mut gpu,
            &app(),
            &lines("-n 500\n"),
            &opts,
            HostServices::default(),
        )
        .unwrap();
        assert!(
            (res.load_imbalance() - 1.0).abs() < 0.05,
            "{}",
            res.load_imbalance()
        );
    }

    #[test]
    fn oom_instance_reported_not_fatal() {
        fn hog_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
            // Each instance reserves 15 GB: on a 40 GB device the third
            // and later instances fail, like the paper's Page-Rank runs.
            let _ = cx;
            team.serial("alloc", |lane| lane.dev_alloc(15 << 30))?;
            Ok(0)
        }
        let a = HostApp::new("hog", MODULE, hog_main);
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 4,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        let res =
            run_ensemble(&mut gpu, &a, &lines("-x\n"), &opts, HostServices::default()).unwrap();
        assert!(res.any_oom());
        let oks = res.instances.iter().filter(|i| i.succeeded()).count();
        let ooms = res.instances.iter().filter(|i| i.oom).count();
        assert_eq!(oks, 2);
        assert_eq!(ooms, 2);
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn batched_ensemble_pushes_past_the_memory_wall() {
        // 8 paper-scale hogs cannot run concurrently (15 GB each on 40 GB)
        // but complete in batches of 2.
        fn hog_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
            let _ = cx;
            let buf = team.serial("alloc", |lane| {
                lane.dev_reserve(15 << 30)?;
                lane.dev_alloc(8)
            })?;
            team.serial("touch", |lane| lane.st::<u64>(buf, 7))?;
            Ok(0)
        }
        let a = HostApp::new("hog", MODULE, hog_main);
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 8,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        // Concurrent: OOM.
        let res =
            run_ensemble(&mut gpu, &a, &lines("-x\n"), &opts, HostServices::default()).unwrap();
        assert!(res.any_oom());
        // Batched by 2: all succeed, four sequential launches.
        let res = run_ensemble_batched(&mut gpu, &a, &lines("-x\n"), &opts, 2).unwrap();
        assert!(res.all_succeeded(), "{:?}", res.instances);
        assert_eq!(res.instances.len(), 8);
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn batched_matches_unbatched_results() {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 6,
            thread_limit: 32,
            cycle_args: true,
            ..Default::default()
        };
        let arg_lines = lines("-n 100\n-n 200\n-n 300\n");
        let full =
            run_ensemble(&mut gpu, &app(), &arg_lines, &opts, HostServices::default()).unwrap();
        let batched = run_ensemble_batched(&mut gpu, &app(), &arg_lines, &opts, 2).unwrap();
        // Instance ids are per-launch (each batch is its own kernel), so
        // compare the computed payloads, not the id prefix.
        let sums = |v: &[String]| -> Vec<String> {
            v.iter()
                .map(|s| s.split("sum ").nth(1).unwrap().to_string())
                .collect()
        };
        assert_eq!(sums(&full.stdout), sums(&batched.stdout));
        // Sequential batches cannot beat the single concurrent launch.
        assert!(batched.kernel_time_s >= full.kernel_time_s);
        assert_eq!(batched.instance_end_times_s.len(), 6);
    }

    #[test]
    fn packed_mapping_shares_blocks() {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 8,
            thread_limit: 128,
            mapping: MappingStrategy::Packed { per_block: 4 },
            cycle_args: true,
            ..Default::default()
        };
        let res = run_ensemble(
            &mut gpu,
            &app(),
            &lines("-n 100\n"),
            &opts,
            HostServices::default(),
        )
        .unwrap();
        assert!(res.all_succeeded());
        assert_eq!(res.report.blocks, 2);
        assert_eq!(res.report.threads_per_block, 128);
    }

    #[test]
    fn bad_packing_rejected() {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 4,
            thread_limit: 100,
            mapping: MappingStrategy::Packed { per_block: 3 },
            cycle_args: true,
            ..Default::default()
        };
        assert!(matches!(
            run_ensemble(
                &mut gpu,
                &app(),
                &lines("-x\n"),
                &opts,
                HostServices::default()
            ),
            Err(EnsembleError::BadPacking { .. })
        ));
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn cli_parses_paper_invocation() {
        let args: Vec<String> = ["-f", "arguments.txt", "-n", "4", "-t", "128"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = parse_ensemble_cli(&args).unwrap();
        assert_eq!(
            cli,
            EnsembleCliArgs {
                arg_file: "arguments.txt".into(),
                num_instances: Some(4),
                thread_limit: 128,
                pack: 1,
                batch: 0,
                trace_out: None,
                metrics_out: None,
                quiet: false,
                faults: None,
                max_attempts: 3,
                auto_batch: false,
                instance_timeout: None,
                fail_fast: false,
                retry_jitter: None,
                devices: 1,
                placement: "round-robin".into(),
                cycle_args: false,
                sample_interval: None,
                progress: false,
                insight_out: None,
                flame_out: None,
                monitor_out: None,
                monitor_interval_ms: DEFAULT_MONITOR_INTERVAL_MS,
                mem_aware: true,
            }
        );
    }

    #[test]
    fn cli_parses_mem_aware_flags() {
        let cli = parse_ensemble_cli(&["-f", "a"].map(String::from)).unwrap();
        assert!(cli.mem_aware, "memory-aware placement defaults on");
        let cli = parse_ensemble_cli(&["-f", "a", "--no-mem-aware"].map(String::from)).unwrap();
        assert!(!cli.mem_aware);
        // The positive spelling re-enables after an earlier opt-out.
        let cli =
            parse_ensemble_cli(&["-f", "a", "--no-mem-aware", "--mem-aware"].map(String::from))
                .unwrap();
        assert!(cli.mem_aware);
    }

    #[test]
    fn cli_parses_monitor_flags() {
        let cli = parse_ensemble_cli(
            &[
                "-f",
                "a",
                "--monitor-out",
                "snap.om",
                "--monitor-interval",
                "250",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cli.monitor_out.as_deref(), Some("snap.om"));
        assert_eq!(cli.monitor_interval_ms, 250);
        // A zero interval would spin the monitor thread — rejected.
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--monitor-interval", "0"].map(String::from)),
            Err(CliError::BadValue("--monitor-interval", "0".into()))
        );
    }

    #[test]
    fn eta_formats_finite_rates_and_dashes_degenerate_ones() {
        assert_eq!(format_eta_s(10, 2.0), "5.0 s");
        assert_eq!(format_eta_s(0, 2.0), "0.0 s");
        // Zero, ~zero, negative and NaN rates all divide to inf/NaN —
        // the column degrades to `--` instead of printing them.
        assert_eq!(format_eta_s(10, 0.0), "--");
        assert_eq!(format_eta_s(10, 1e-12), "--");
        assert_eq!(format_eta_s(10, -1.0), "--");
        assert_eq!(format_eta_s(10, f64::NAN), "--");
    }

    #[test]
    fn cli_parses_multi_device_flags() {
        let args: Vec<String> = [
            "-f",
            "args.txt",
            "--devices",
            "3",
            "--placement",
            "lpt",
            "--cycle-args",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = parse_ensemble_cli(&args).unwrap();
        assert_eq!(cli.devices, 3);
        assert_eq!(cli.placement, "lpt");
        assert!(cli.cycle_args);
        // Zero devices is rejected.
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--devices", "0"].map(String::from)),
            Err(CliError::BadValue("--devices", "0".into()))
        );
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--devices", "x"].map(String::from)),
            Err(CliError::BadValue("--devices", "x".into()))
        );
    }

    #[test]
    fn cli_parses_fault_flags() {
        let args: Vec<String> = [
            "-f",
            "args.txt",
            "--faults",
            "plan.json",
            "--max-attempts",
            "5",
            "--auto-batch",
            "--instance-timeout",
            "50000",
            "--fail-fast",
            "--retry-jitter",
            "1234",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = parse_ensemble_cli(&args).unwrap();
        assert_eq!(cli.faults.as_deref(), Some("plan.json"));
        assert_eq!(cli.max_attempts, 5);
        assert!(cli.auto_batch);
        assert_eq!(cli.instance_timeout, Some(50000.0));
        assert!(cli.fail_fast);
        assert_eq!(cli.retry_jitter, Some(1234));
        // Zero attempts and non-positive budgets are rejected.
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--max-attempts", "0"].map(String::from)),
            Err(CliError::BadValue("--max-attempts", "0".into()))
        );
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--instance-timeout", "-1"].map(String::from)),
            Err(CliError::BadValue("--instance-timeout", "-1".into()))
        );
        assert_eq!(
            parse_ensemble_cli(&["-f", "a", "--retry-jitter", "nope"].map(String::from)),
            Err(CliError::BadValue("--retry-jitter", "nope".into()))
        );
    }

    #[test]
    fn cli_parses_observability_flags() {
        let args: Vec<String> = [
            "-f",
            "args.txt",
            "-n",
            "8",
            "-t",
            "32",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.jsonl",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = parse_ensemble_cli(&args).unwrap();
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cli.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(cli.quiet);
        assert_eq!(
            parse_ensemble_cli(&["-f".into(), "a".into(), "--trace-out".into()]),
            Err(CliError::MissingValue("--trace-out"))
        );
    }

    #[test]
    fn cli_rejects_malformed() {
        let to = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_ensemble_cli(&to(&["-n", "4"])),
            Err(CliError::MissingArgFile)
        );
        assert_eq!(
            parse_ensemble_cli(&to(&["-f"])),
            Err(CliError::MissingValue("-f"))
        );
        assert_eq!(
            parse_ensemble_cli(&to(&["-f", "a", "-n", "x"])),
            Err(CliError::BadValue("-n", "x".into()))
        );
        assert_eq!(
            parse_ensemble_cli(&to(&["-f", "a", "--wat"])),
            Err(CliError::UnknownFlag("--wat".into()))
        );
    }

    #[test]
    fn cli_defaults() {
        let cli = parse_ensemble_cli(&["-f".to_string(), "args.txt".to_string()]).unwrap();
        assert_eq!(cli.num_instances, None);
        assert_eq!(cli.thread_limit, 128);
        assert_eq!(cli.pack, 1);
        assert_eq!(cli.batch, 0);
        assert_eq!(cli.faults, None);
        assert_eq!(cli.max_attempts, 3);
        assert!(!cli.auto_batch);
        assert_eq!(cli.instance_timeout, None);
        assert!(!cli.fail_fast);
        assert_eq!(cli.retry_jitter, None);
        assert_eq!(cli.devices, 1);
        assert_eq!(cli.placement, "round-robin");
        assert!(!cli.cycle_args);
        assert_eq!(cli.sample_interval, None);
        assert!(!cli.progress);

        let cli = parse_ensemble_cli(&["-f", "a", "--batch", "4"].map(String::from)).unwrap();
        assert_eq!(cli.batch, 4);
    }

    #[test]
    fn cli_parses_telemetry_flags() {
        // --timeline alone picks the default interval.
        let cli = parse_ensemble_cli(&["-f", "a", "--timeline"].map(String::from)).unwrap();
        assert_eq!(cli.sample_interval, Some(DEFAULT_SAMPLE_INTERVAL));
        // --sample-interval sets an explicit interval and implies
        // --timeline, in either flag order.
        let cli = parse_ensemble_cli(
            &["-f", "a", "--sample-interval", "2500", "--timeline"].map(String::from),
        )
        .unwrap();
        assert_eq!(cli.sample_interval, Some(2500.0));
        let cli = parse_ensemble_cli(&["-f", "a", "--sample-interval", "2500"].map(String::from))
            .unwrap();
        assert_eq!(cli.sample_interval, Some(2500.0));
        // --progress parses and composes with --quiet.
        let cli =
            parse_ensemble_cli(&["-f", "a", "--progress", "--quiet"].map(String::from)).unwrap();
        assert!(cli.progress && cli.quiet);
        // Non-positive, non-finite and non-numeric intervals are rejected.
        for bad in ["0", "-5", "nan", "inf", "x"] {
            assert_eq!(
                parse_ensemble_cli(&["-f", "a", "--sample-interval", bad].map(String::from)),
                Err(CliError::BadValue("--sample-interval", bad.into())),
                "interval {bad:?} must be rejected"
            );
        }
        assert_eq!(
            parse_ensemble_cli(&["-f".into(), "a".into(), "--sample-interval".into()]),
            Err(CliError::MissingValue("--sample-interval"))
        );
    }
}
