//! The argument-file script language — the paper's §3.2 future work
//! ("design a script language specifically for the command line argument
//! file … enable the generation of command line arguments for each
//! instance dynamically"), implemented as an extension.
//!
//! Plain lines behave exactly as in [`crate::parse_arg_file`]. Two
//! directive forms generate lines:
//!
//! ```text
//! # eight instances, lookups growing 100, 150, 200, ...
//! @repeat 8: -l {100 + 50*i} -g 32
//!
//! # explicit range with a step: i = 2, 4, 6, 8
//! @for i in 2..10 step 2: -v {i*1000} -d {i}
//! ```
//!
//! Inside a directive's template, `{expr}` evaluates an integer expression
//! over the loop variable `i` with `+ - * / %`, parentheses and numeric
//! literals. `@repeat N` binds `i = 0..N`. `@for i in a..b [step s]`
//! iterates the half-open range.

use crate::argfile::{parse_arg_file, ArgFileError};

/// Script processing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// The underlying file was empty after expansion.
    Empty,
    /// A directive or expression failed to parse.
    Parse { line: usize, message: String },
    /// An expression failed to evaluate (division by zero, overflow).
    Eval { line: usize, message: String },
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Empty => write!(f, "argument script produced no instances"),
            ScriptError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ScriptError::Eval { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<ArgFileError> for ScriptError {
    fn from(e: ArgFileError) -> Self {
        match e {
            ArgFileError::Empty => ScriptError::Empty,
        }
    }
}

/// Expand an argument script into per-instance argument vectors.
///
/// A file without directives expands exactly like [`parse_arg_file`], so
/// this is a strict superset of the proof-of-concept format.
pub fn expand_arg_script(text: &str) -> Result<Vec<Vec<String>>, ScriptError> {
    let mut plain = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("@repeat") {
            let (count_src, template) = split_directive(rest, lineno)?;
            let count = eval_expr(count_src.trim(), 0).map_err(|message| ScriptError::Eval {
                line: lineno,
                message,
            })?;
            if count < 0 {
                return Err(ScriptError::Eval {
                    line: lineno,
                    message: format!("repeat count {count} is negative"),
                });
            }
            for i in 0..count {
                expand_template(template, i, lineno, &mut plain)?;
            }
        } else if let Some(rest) = line.strip_prefix("@for") {
            let (head, template) = split_directive(rest, lineno)?;
            let (start, end, step) = parse_for_head(head.trim(), lineno)?;
            let mut i = start;
            while (step > 0 && i < end) || (step < 0 && i > end) {
                expand_template(template, i, lineno, &mut plain)?;
                i += step;
            }
        } else if line.starts_with('@') {
            return Err(ScriptError::Parse {
                line: lineno,
                message: format!("unknown directive: {line}"),
            });
        } else {
            plain.push_str(raw);
            plain.push('\n');
        }
    }
    Ok(parse_arg_file(&plain)?)
}

fn split_directive(rest: &str, lineno: usize) -> Result<(&str, &str), ScriptError> {
    rest.split_once(':').ok_or_else(|| ScriptError::Parse {
        line: lineno,
        message: "directive needs a ':' before its template".into(),
    })
}

/// `i in a..b [step s]`
fn parse_for_head(head: &str, lineno: usize) -> Result<(i64, i64, i64), ScriptError> {
    let perr = |message: String| ScriptError::Parse {
        line: lineno,
        message,
    };
    let rest = head
        .strip_prefix("i")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix("in"))
        .ok_or_else(|| perr("expected '@for i in a..b [step s]'".into()))?;
    let (range, step_src) = match rest.split_once("step") {
        Some((r, s)) => (r.trim(), Some(s.trim())),
        None => (rest.trim(), None),
    };
    let (a, b) = range
        .split_once("..")
        .ok_or_else(|| perr(format!("expected 'a..b' range, got '{range}'")))?;
    let eerr = |message: String| ScriptError::Eval {
        line: lineno,
        message,
    };
    let start = eval_expr(a.trim(), 0).map_err(eerr)?;
    let end = eval_expr(b.trim(), 0).map_err(|m| ScriptError::Eval {
        line: lineno,
        message: m,
    })?;
    let step = match step_src {
        Some(s) => eval_expr(s, 0).map_err(|m| ScriptError::Eval {
            line: lineno,
            message: m,
        })?,
        None => 1,
    };
    if step == 0 {
        return Err(ScriptError::Eval {
            line: lineno,
            message: "step must be non-zero".into(),
        });
    }
    Ok((start, end, step))
}

fn expand_template(
    template: &str,
    i: i64,
    lineno: usize,
    out: &mut String,
) -> Result<(), ScriptError> {
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        let close = after.find('}').ok_or_else(|| ScriptError::Parse {
            line: lineno,
            message: "unterminated '{' in template".into(),
        })?;
        let value = eval_expr(&after[..close], i).map_err(|message| ScriptError::Eval {
            line: lineno,
            message,
        })?;
        out.push_str(&value.to_string());
        rest = &after[close + 1..];
    }
    out.push_str(rest);
    out.push('\n');
    Ok(())
}

// ---- expression evaluator --------------------------------------------

/// Evaluate an integer expression over the loop variable `i`.
/// Grammar: expr := term (('+'|'-') term)*; term := unary (('*'|'/'|'%')
/// unary)*; unary := '-' unary | atom; atom := number | 'i' | '(' expr ')'.
pub fn eval_expr(src: &str, i: i64) -> Result<i64, String> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        i,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!(
            "unexpected trailing input at '{}'",
            &src[p.pos.min(src.len())..]
        ));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    i: i64,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<i64, String> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    v = v
                        .checked_add(self.term()?)
                        .ok_or_else(|| "addition overflow".to_string())?;
                }
                Some(b'-') => {
                    self.pos += 1;
                    v = v
                        .checked_sub(self.term()?)
                        .ok_or_else(|| "subtraction overflow".to_string())?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<i64, String> {
        let mut v = self.unary()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    v = v
                        .checked_mul(self.unary()?)
                        .ok_or_else(|| "multiplication overflow".to_string())?;
                }
                Some(b'/') => {
                    self.pos += 1;
                    let d = self.unary()?;
                    v = v
                        .checked_div(d)
                        .ok_or_else(|| "division by zero".to_string())?;
                }
                Some(b'%') => {
                    self.pos += 1;
                    let d = self.unary()?;
                    v = v
                        .checked_rem(d)
                        .ok_or_else(|| "modulo by zero".to_string())?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn unary(&mut self) -> Result<i64, String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
            return Ok(-self.unary()?);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<i64, String> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err("expected ')'".into());
                }
                self.pos += 1;
                Ok(v)
            }
            Some(b'i') => {
                self.pos += 1;
                Ok(self.i)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .parse()
                    .map_err(|e| format!("bad number: {e}"))
            }
            Some(c) => Err(format!("unexpected character '{}'", c as char)),
            None => Err("unexpected end of expression".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expressions_evaluate() {
        assert_eq!(eval_expr("42", 0).unwrap(), 42);
        assert_eq!(eval_expr("i", 7).unwrap(), 7);
        assert_eq!(eval_expr("100 + 50*i", 3).unwrap(), 250);
        assert_eq!(eval_expr("(i+1)*(i+2)", 2).unwrap(), 12);
        assert_eq!(eval_expr("-i + 10", 4).unwrap(), 6);
        assert_eq!(eval_expr("17 % 5", 0).unwrap(), 2);
        assert_eq!(eval_expr("100 / (i+1)", 3).unwrap(), 25);
        assert_eq!(eval_expr("2*3+4*5", 0).unwrap(), 26);
    }

    #[test]
    fn expression_errors_are_reported() {
        assert!(eval_expr("1 / 0", 0).is_err());
        assert!(eval_expr("1 +", 0).is_err());
        assert!(eval_expr("(1", 0).is_err());
        assert!(eval_expr("1 2", 0).is_err());
        assert!(eval_expr("x", 0).is_err());
        assert!(eval_expr("", 0).is_err());
    }

    #[test]
    fn repeat_generates_instances() {
        let lines = expand_arg_script("@repeat 4: -l {100 + 50*i} -g 32\n").unwrap();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], vec!["-l", "100", "-g", "32"]);
        assert_eq!(lines[3], vec!["-l", "250", "-g", "32"]);
    }

    #[test]
    fn for_range_with_step() {
        let lines = expand_arg_script("@for i in 2..10 step 2: -v {i*1000}\n").unwrap();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], vec!["-v", "2000"]);
        assert_eq!(lines[3], vec!["-v", "8000"]);
    }

    #[test]
    fn negative_step_counts_down() {
        let lines = expand_arg_script("@for i in 3..0 step -1: {i}\n").unwrap();
        assert_eq!(
            lines,
            vec![vec!["3".to_string()], vec!["2".into()], vec!["1".into()]]
        );
    }

    #[test]
    fn plain_lines_and_directives_mix() {
        let text = "# fixed warm-up instance\n-l 10\n@repeat 2: -l {20+i}\n";
        let lines = expand_arg_script(text).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], vec!["-l", "10"]);
        assert_eq!(lines[2], vec!["-l", "21"]);
    }

    #[test]
    fn substitution_inside_tokens() {
        let lines = expand_arg_script("@repeat 2: -c data-{i+1}.bin\n").unwrap();
        assert_eq!(lines[0], vec!["-c", "data-1.bin"]);
        assert_eq!(lines[1], vec!["-c", "data-2.bin"]);
    }

    #[test]
    fn plain_files_behave_like_parse_arg_file() {
        let text = "-a 1 -b\n-a 2 -b\n";
        assert_eq!(
            expand_arg_script(text).unwrap(),
            parse_arg_file(text).unwrap()
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = expand_arg_script("-a 1\n@repeat x: -l {i}\n").unwrap_err();
        assert!(matches!(e, ScriptError::Eval { line: 2, .. }), "{e:?}");
        let e = expand_arg_script("@bogus 3: x\n").unwrap_err();
        assert!(matches!(e, ScriptError::Parse { line: 1, .. }));
        let e = expand_arg_script("@repeat 2: -l {i\n").unwrap_err();
        assert!(matches!(e, ScriptError::Parse { line: 1, .. }));
        let e = expand_arg_script("@repeat 2: -l {1/0}\n").unwrap_err();
        assert!(matches!(e, ScriptError::Eval { line: 1, .. }));
    }

    #[test]
    fn empty_expansion_is_an_error() {
        assert_eq!(
            expand_arg_script("@repeat 0: -l {i}\n").unwrap_err(),
            ScriptError::Empty
        );
        assert_eq!(expand_arg_script("").unwrap_err(), ScriptError::Empty);
    }

    #[test]
    fn directive_without_colon_rejected() {
        assert!(matches!(
            expand_arg_script("@repeat 4 -l {i}\n").unwrap_err(),
            ScriptError::Parse { .. }
        ));
    }
}
