use dgc_compiler::CompiledImage;
use dgc_ir::GlobalPlacement;
use gpu_mem::DevicePtr;
use gpu_sim::{KernelError, SharedBuf, TeamCtx};
use std::collections::BTreeMap;

/// Where the loader placed one module global for this team, following the
/// compiled image's placement decision.
#[derive(Debug, Clone, Copy)]
pub enum GlobalSlot {
    /// One copy in device-global memory, **shared by every instance** — the
    /// §3.3 isolation hazard when mutable.
    Device(DevicePtr),
    /// A per-team copy in shared memory (the §3.3 transform applied).
    Shared(SharedBuf<u8>),
}

/// Per-instance execution context handed to the application's
/// (renamed) `__user_main`.
pub struct AppContext {
    /// This instance's command-line arguments; `argv[0]` is the program
    /// name, the rest comes from the instance's argument-file line.
    pub argv: Vec<String>,
    /// Module globals, placed per the compiled image.
    pub globals: BTreeMap<String, GlobalSlot>,
    /// Instance id (equals the team id under the default mapping).
    pub instance: u32,
    /// Total instances in the ensemble.
    pub num_instances: u32,
}

impl AppContext {
    /// Look up a global that must exist (the compiler verified the module).
    pub fn global(&self, name: &str) -> Result<GlobalSlot, KernelError> {
        self.globals.get(name).copied().ok_or_else(|| {
            KernelError::App(format!("module has no global @{name} (was it DCE'd?)"))
        })
    }

    /// `argc`, C-style.
    pub fn argc(&self) -> i32 {
        self.argv.len() as i32
    }
}

/// The application's canonicalized entry point: the device-side
/// `__user_main(int argc, char **argv)` as a Rust function over the team
/// context.
pub type AppMainFn = fn(&mut TeamCtx<'_>, &AppContext) -> Result<i32, KernelError>;

/// A legacy CPU application, packaged for direct GPU compilation.
///
/// `module_text` is the symbol-level IR the compiler pipeline transforms
/// (the stand-in for the application's LLVM bitcode); `main` is the
/// executable behaviour the simulator runs. The loader keeps the two in
/// sync: RPC services not stubbed in the compiled module are unreachable at
/// run time, and globals live where the pipeline placed them.
#[derive(Clone)]
pub struct HostApp {
    pub name: &'static str,
    pub module_text: String,
    pub main: AppMainFn,
    /// Paper-scale footprint divided by materialized footprint, derived
    /// from the parsed arguments (see `gpu-sim`'s L2 model). `None` = 1.
    pub footprint_scale: Option<fn(&[String]) -> f64>,
}

impl HostApp {
    pub fn new(name: &'static str, module_text: impl Into<String>, main: AppMainFn) -> Self {
        Self {
            name,
            module_text: module_text.into(),
            main,
            footprint_scale: None,
        }
    }
}

/// Allocate this team's view of the module globals, following the compiled
/// image's placements. Device/constant globals are allocated once by the
/// loader and passed in via `device_globals`; shared ones are allocated
/// here, per team.
pub fn build_globals(
    team: &mut TeamCtx<'_>,
    image: &CompiledImage,
    device_globals: &BTreeMap<String, DevicePtr>,
) -> Result<BTreeMap<String, GlobalSlot>, KernelError> {
    let mut slots = BTreeMap::new();
    for g in &image.module.globals {
        let slot = match g.placement {
            GlobalPlacement::DeviceGlobal | GlobalPlacement::Constant => {
                let ptr = device_globals.get(&g.name).copied().ok_or_else(|| {
                    KernelError::App(format!("loader did not allocate global @{}", g.name))
                })?;
                GlobalSlot::Device(ptr)
            }
            GlobalPlacement::TeamShared => {
                GlobalSlot::Shared(team.shared_alloc::<u8>(g.size as usize)?)
            }
        };
        slots.insert(g.name.clone(), slot);
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_lookup_and_argc() {
        let mut globals = BTreeMap::new();
        globals.insert("g".to_string(), GlobalSlot::Device(DevicePtr(0x7000)));
        let cx = AppContext {
            argv: vec!["prog".into(), "-n".into(), "5".into()],
            globals,
            instance: 2,
            num_instances: 4,
        };
        assert_eq!(cx.argc(), 3);
        assert!(matches!(cx.global("g"), Ok(GlobalSlot::Device(_))));
        assert!(cx.global("missing").is_err());
    }
}
