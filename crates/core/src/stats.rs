//! Speedup bookkeeping for the evaluation harness.

use serde::{Deserialize, Serialize};

/// Why a speedup computation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A measured time was zero or negative (`which` is "t1" or "tn").
    NonPositiveTime { which: &'static str, value: f64 },
    /// The series has no runnable N=1 measurement to normalize against.
    MissingBaseline,
    /// A summary statistic was requested over an empty sample series.
    EmptySeries,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NonPositiveTime { which, value } => {
                write!(f, "{which} must be positive, got {value}")
            }
            StatsError::MissingBaseline => {
                write!(f, "series needs a runnable single-instance measurement")
            }
            StatsError::EmptySeries => {
                write!(f, "summary statistic requested over an empty series")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// The paper's §4.3 relative-speedup metric: `T1 × N / TN`, where `T1` is
/// the single-instance time and `TN` the time for `N` concurrent instances.
/// Equals `N` under perfectly linear scaling. Rejects non-positive times
/// instead of dividing by (or into) zero.
pub fn relative_speedup(t1: f64, n: u32, tn: f64) -> Result<f64, StatsError> {
    // NaN also fails this check, so NaN inputs are rejected, not propagated.
    let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !positive(t1) {
        return Err(StatsError::NonPositiveTime {
            which: "t1",
            value: t1,
        });
    }
    if !positive(tn) {
        return Err(StatsError::NonPositiveTime {
            which: "tn",
            value: tn,
        });
    }
    Ok(t1 * n as f64 / tn)
}

/// Mean of a utilization (or any rate) series. The telemetry rollup for
/// the launch-level `utilization_mean` metric; rejects the empty series
/// rather than returning NaN, mirroring [`SpeedupSeries`]' convention of
/// surfacing degenerate inputs as [`StatsError`]s.
pub fn utilization_mean(samples: &[f64]) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptySeries);
    }
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Nearest-rank 95th percentile of a utilization series (the smallest
/// sample ≥ 95 % of the series). Like [`utilization_mean`], the empty
/// series is an error, not NaN.
pub fn utilization_p95(samples: &[f64]) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptySeries);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Nearest-rank: ceil(0.95 * n), 1-based.
    let rank = ((0.95 * sorted.len() as f64).ceil() as usize).max(1);
    Ok(sorted[rank - 1])
}

/// One measured point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    pub instances: u32,
    /// `TN` in seconds; `None` when the configuration was not runnable
    /// (device out of memory), as for Page-Rank beyond 4 instances.
    pub time_s: Option<f64>,
    pub speedup: Option<f64>,
}

/// A full scaling curve for one benchmark at one thread limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSeries {
    pub benchmark: String,
    pub thread_limit: u32,
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupSeries {
    /// Build a series from measured times, computing speedups against the
    /// N=1 point. Fails with [`StatsError::MissingBaseline`] when no
    /// runnable single-instance measurement exists, and propagates
    /// non-positive measured times.
    pub fn from_times(
        benchmark: &str,
        thread_limit: u32,
        times: &[(u32, Option<f64>)],
    ) -> Result<SpeedupSeries, StatsError> {
        let t1 = times
            .iter()
            .find(|(n, _)| *n == 1)
            .and_then(|(_, t)| *t)
            .ok_or(StatsError::MissingBaseline)?;
        let mut points = Vec::with_capacity(times.len());
        for &(n, t) in times {
            let speedup = match t {
                Some(t) => Some(relative_speedup(t1, n, t)?),
                None => None,
            };
            points.push(SpeedupPoint {
                instances: n,
                time_s: t,
                speedup,
            });
        }
        Ok(SpeedupSeries {
            benchmark: benchmark.to_string(),
            thread_limit,
            points,
        })
    }

    /// Largest speedup across runnable points.
    pub fn peak_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter_map(|p| p.speedup)
            .fold(0.0, f64::max)
    }

    /// Whether the curve never exceeds linear scaling (within tolerance).
    pub fn is_sublinear(&self, tol: f64) -> bool {
        self.points.iter().all(|p| {
            p.speedup
                .map(|s| s <= p.instances as f64 * (1.0 + tol))
                .unwrap_or(true)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formula_matches_paper() {
        // If 64 instances take the same time as 1 instance, speedup = 64.
        assert_eq!(relative_speedup(2.0, 64, 2.0), Ok(64.0));
        // If they take twice as long, speedup = 32.
        assert_eq!(relative_speedup(2.0, 64, 4.0), Ok(32.0));
        // Single instance is always 1.
        assert_eq!(relative_speedup(5.0, 1, 5.0), Ok(1.0));
    }

    #[test]
    fn series_from_times_with_oom_hole() {
        let s = SpeedupSeries::from_times(
            "pagerank",
            32,
            &[
                (1, Some(1.0)),
                (2, Some(1.1)),
                (4, Some(1.3)),
                (8, None), // OOM
            ],
        )
        .unwrap();
        assert_eq!(s.points[1].speedup, Some(2.0 / 1.1));
        assert_eq!(s.points[3].speedup, None);
        assert!(s.is_sublinear(1e-9));
        assert!((s.peak_speedup() - 4.0 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn zero_time_rejected_as_error() {
        assert_eq!(
            relative_speedup(0.0, 2, 1.0),
            Err(StatsError::NonPositiveTime {
                which: "t1",
                value: 0.0
            })
        );
        assert_eq!(
            relative_speedup(1.0, 2, -3.0),
            Err(StatsError::NonPositiveTime {
                which: "tn",
                value: -3.0
            })
        );
    }

    #[test]
    fn series_without_baseline_is_an_error() {
        let err = SpeedupSeries::from_times("xs", 32, &[(1, None), (2, Some(1.0))]);
        assert_eq!(err, Err(StatsError::MissingBaseline));
        let err = SpeedupSeries::from_times("xs", 32, &[(2, Some(1.0))]);
        assert_eq!(err, Err(StatsError::MissingBaseline));
    }

    #[test]
    fn all_none_curve_is_a_missing_baseline_not_a_crash() {
        // A workload that OOMs at every instance count (every time is
        // `None`) must error out cleanly, including the degenerate
        // single-point and empty curves.
        let err = SpeedupSeries::from_times("pr", 32, &[(1, None), (2, None), (4, None)]);
        assert_eq!(err, Err(StatsError::MissingBaseline));
        let err = SpeedupSeries::from_times("pr", 32, &[(1, None)]);
        assert_eq!(err, Err(StatsError::MissingBaseline));
        let err = SpeedupSeries::from_times("pr", 32, &[]);
        assert_eq!(err, Err(StatsError::MissingBaseline));
    }

    #[test]
    fn utilization_rollups_match_hand_computation() {
        let s = [0.2, 0.4, 0.6, 0.8];
        assert_eq!(utilization_mean(&s), Ok(0.5));
        // Nearest-rank p95 over 4 samples: rank ceil(3.8) = 4 → max.
        assert_eq!(utilization_p95(&s), Ok(0.8));
        // Single sample: both rollups collapse to it.
        assert_eq!(utilization_mean(&[0.3]), Ok(0.3));
        assert_eq!(utilization_p95(&[0.3]), Ok(0.3));
        // 100 samples 0.00..0.99: p95 = 95th sorted value = 0.94.
        let long: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let p95 = utilization_p95(&long).unwrap();
        assert!((p95 - 0.94).abs() < 1e-12, "got {p95}");
    }

    #[test]
    fn utilization_rollups_reject_empty_series() {
        assert_eq!(utilization_mean(&[]), Err(StatsError::EmptySeries));
        assert_eq!(utilization_p95(&[]), Err(StatsError::EmptySeries));
    }

    #[test]
    fn all_none_series_is_vacuously_sublinear_with_zero_peak() {
        // A hand-built series whose points are all unrunnable: the
        // predicates must not panic and must give the vacuous answers.
        let s = SpeedupSeries {
            benchmark: "pr".into(),
            thread_limit: 32,
            points: vec![
                SpeedupPoint {
                    instances: 1,
                    time_s: None,
                    speedup: None,
                },
                SpeedupPoint {
                    instances: 2,
                    time_s: None,
                    speedup: None,
                },
            ],
        };
        assert!(s.is_sublinear(0.0));
        assert_eq!(s.peak_speedup(), 0.0);
    }
}
