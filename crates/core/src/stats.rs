//! Speedup bookkeeping for the evaluation harness.

use serde::{Deserialize, Serialize};

/// The paper's §4.3 relative-speedup metric: `T1 × N / TN`, where `T1` is
/// the single-instance time and `TN` the time for `N` concurrent instances.
/// Equals `N` under perfectly linear scaling.
pub fn relative_speedup(t1: f64, n: u32, tn: f64) -> f64 {
    assert!(t1 > 0.0 && tn > 0.0, "times must be positive");
    t1 * n as f64 / tn
}

/// One measured point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    pub instances: u32,
    /// `TN` in seconds; `None` when the configuration was not runnable
    /// (device out of memory), as for Page-Rank beyond 4 instances.
    pub time_s: Option<f64>,
    pub speedup: Option<f64>,
}

/// A full scaling curve for one benchmark at one thread limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSeries {
    pub benchmark: String,
    pub thread_limit: u32,
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupSeries {
    /// Build a series from measured times, computing speedups against the
    /// N=1 point (which must be present and runnable).
    pub fn from_times(
        benchmark: &str,
        thread_limit: u32,
        times: &[(u32, Option<f64>)],
    ) -> SpeedupSeries {
        let t1 = times
            .iter()
            .find(|(n, _)| *n == 1)
            .and_then(|(_, t)| *t)
            .expect("series needs a runnable single-instance measurement");
        let points = times
            .iter()
            .map(|&(n, t)| SpeedupPoint {
                instances: n,
                time_s: t,
                speedup: t.map(|t| relative_speedup(t1, n, t)),
            })
            .collect();
        SpeedupSeries {
            benchmark: benchmark.to_string(),
            thread_limit,
            points,
        }
    }

    /// Largest speedup across runnable points.
    pub fn peak_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter_map(|p| p.speedup)
            .fold(0.0, f64::max)
    }

    /// Whether the curve never exceeds linear scaling (within tolerance).
    pub fn is_sublinear(&self, tol: f64) -> bool {
        self.points
            .iter()
            .all(|p| p.speedup.map(|s| s <= p.instances as f64 * (1.0 + tol)).unwrap_or(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formula_matches_paper() {
        // If 64 instances take the same time as 1 instance, speedup = 64.
        assert_eq!(relative_speedup(2.0, 64, 2.0), 64.0);
        // If they take twice as long, speedup = 32.
        assert_eq!(relative_speedup(2.0, 64, 4.0), 32.0);
        // Single instance is always 1.
        assert_eq!(relative_speedup(5.0, 1, 5.0), 1.0);
    }

    #[test]
    fn series_from_times_with_oom_hole() {
        let s = SpeedupSeries::from_times(
            "pagerank",
            32,
            &[
                (1, Some(1.0)),
                (2, Some(1.1)),
                (4, Some(1.3)),
                (8, None), // OOM
            ],
        );
        assert_eq!(s.points[1].speedup, Some(2.0 / 1.1));
        assert_eq!(s.points[3].speedup, None);
        assert!(s.is_sublinear(1e-9));
        assert!((s.peak_speedup() - 4.0 / 1.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        relative_speedup(0.0, 2, 1.0);
    }
}
