//! The \[27\] "GPU First" execution mode: multi-team expansion of a single
//! application instance — the baseline the ensemble paper positions itself
//! against.
//!
//! Where the original loader \[26\] runs the whole program in one team, the
//! extension work \[27\] *relaunches* each semantically-eligible parallel
//! region as its own kernel with many teams, so one instance can use the
//! whole device. This module reproduces that execution model on the
//! simulator:
//!
//! 1. the program executes functionally once, with
//!    `num_teams × thread_limit` logical lanes;
//! 2. each barrier-delimited phase becomes its own (simulated) kernel:
//!    serial phases run as one single-warp team, parallel phases split
//!    their warps across `num_teams` blocks;
//! 3. the instance's time is the sum of the phase kernels plus one launch
//!    overhead per kernel boundary — the relaunch cost that ensemble
//!    execution avoids.
//!
//! The compiler's [`dgc_compiler::ExpansionInfo`] gates the mode exactly as
//! \[27\] does: a program whose parallel regions are not order-independent
//! cannot be expanded (and ensemble execution is the remaining option —
//! the motivation of §3).

use crate::app::{build_globals, AppContext, HostApp};
use crate::loader::{alloc_device_globals, inject_main_wrapper, make_rpc_hook, GLOBALS_TAG};
use dgc_compiler::{compile, CompilerOptions};
use dgc_ir::Module;
use gpu_mem::TransferDirection;
use gpu_sim::{simulate_timing, BlockTrace, MixedSeg, Phase, TeamCtx, TeamTrace, TimingInputs};
use host_rpc::{HostServices, RpcServer, RpcStats};

use crate::loader::LoaderError;

/// Why multi-team execution was refused.
#[derive(Debug)]
pub enum MultiTeamError {
    /// Loader-level failure (parse, compile, allocation).
    Loader(LoaderError),
    /// The expansion analysis found order-dependent parallel regions, so
    /// OpenMP semantics forbid multiple teams (the paper's §3 case).
    NotEligible {
        parallel_regions: u32,
        expandable: u32,
    },
}

impl std::fmt::Display for MultiTeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiTeamError::Loader(e) => write!(f, "{e}"),
            MultiTeamError::NotEligible {
                parallel_regions,
                expandable,
            } => write!(
                f,
                "multi-team expansion not allowed: only {expandable} of {parallel_regions} \
                 parallel regions are order-independent"
            ),
        }
    }
}

impl std::error::Error for MultiTeamError {}

impl From<LoaderError> for MultiTeamError {
    fn from(e: LoaderError) -> Self {
        MultiTeamError::Loader(e)
    }
}

/// Result of one multi-team run.
#[derive(Debug)]
pub struct MultiTeamResult {
    pub exit_code: Option<i32>,
    pub trap: Option<String>,
    pub stdout: String,
    /// Total simulated time: all phase kernels + per-kernel launch
    /// overhead + transfers.
    pub total_time_s: f64,
    /// Kernel-time component only (comparable to `EnsembleResult::kernel_time_s`).
    pub kernel_time_s: f64,
    /// How many kernel launches the region splitting produced.
    pub kernel_launches: u32,
    pub rpc_stats: RpcStats,
}

/// Run one instance of `app` under \[27\]-style multi-team expansion with
/// `num_teams` teams of `thread_limit` threads.
pub fn run_multi_team(
    gpu: &mut gpu_sim::Gpu,
    app: &HostApp,
    args: &[&str],
    num_teams: u32,
    thread_limit: u32,
    services: HostServices,
) -> Result<MultiTeamResult, MultiTeamError> {
    assert!(num_teams >= 1 && thread_limit >= 1);
    let module = Module::parse(&app.module_text).map_err(LoaderError::ModuleParse)?;
    let mut image = compile(module, &CompilerOptions::default()).map_err(LoaderError::Compile)?;
    inject_main_wrapper(&mut image.module);
    if !image.expansion.multi_team_eligible {
        return Err(MultiTeamError::NotEligible {
            parallel_regions: image.expansion.parallel_regions,
            expandable: image.expansion.expandable_regions,
        });
    }

    let argv: Vec<String> = std::iter::once(app.name.to_string())
        .chain(args.iter().map(|s| s.to_string()))
        .collect();
    let argv_bytes: u64 = argv.iter().map(|a| a.len() as u64 + 1).sum();
    let mut transfer_seconds = gpu
        .transfers
        .record(TransferDirection::HostToDevice, argv_bytes);
    let device_globals = alloc_device_globals(gpu, &image).map_err(LoaderError::Globals)?;

    // ---- Functional execution with the expanded lane count. ----
    let (server, client) = RpcServer::spawn(services);
    let lanes = num_teams * thread_limit;
    let footprint = app
        .footprint_scale
        .map(|f| f(&argv))
        .unwrap_or(1.0)
        .max(1.0);
    let outcome;
    let trace: TeamTrace;
    {
        let mut hook = make_rpc_hook(&client);
        let mut ctx = TeamCtx::new(&mut gpu.mem, 0, 1, lanes, 0, gpu.spec.shared_mem_per_block);
        ctx.set_host_call(
            &mut hook,
            Some(image.rpc_services.iter().copied().collect()),
        );
        outcome = (|| {
            let globals = build_globals(&mut ctx, &image, &device_globals)?;
            let cx = AppContext {
                argv: argv.clone(),
                globals,
                instance: 0,
                num_instances: 1,
            };
            (app.main)(&mut ctx, &cx)
        })();
        trace = ctx.finish();
    }
    gpu.mem.free_by_tag(0);
    gpu.mem.free_by_tag(GLOBALS_TAG);
    let services = server.shutdown();

    // ---- Phase-by-phase timing: one kernel per phase. ----
    let warps_per_team = thread_limit.div_ceil(32);
    let mut kernel_cycles = 0.0f64;
    let mut launches = 0u32;
    for phase in &trace.phases {
        let blocks = split_phase(phase, num_teams, warps_per_team);
        if blocks.is_empty() {
            continue;
        }
        launches += 1;
        let timing = simulate_timing(&TimingInputs {
            spec: &gpu.spec,
            blocks: &blocks,
            params: &gpu.timing,
            footprint_multiplier: footprint,
            collect_detail: false,
            collect_stalls: false,
            cycle_budget: None,
            sample_interval: None,
        });
        kernel_cycles += timing.cycles;
    }
    let kernel_time_s = gpu.spec.cycles_to_seconds(kernel_cycles);
    let overhead_s = launches as f64 * gpu.spec.launch_overhead_us * 1e-6;
    transfer_seconds += gpu.transfers.record(TransferDirection::DeviceToHost, 4);

    let (exit_code, trap) = match outcome {
        Ok(c) => (Some(services.exit_code_of(0).unwrap_or(c)), None),
        Err(e) => (services.exit_code_of(0), Some(e.to_string())),
    };
    Ok(MultiTeamResult {
        exit_code,
        trap,
        stdout: services.stdout_of(0).to_string(),
        total_time_s: kernel_time_s + overhead_s + transfer_seconds,
        kernel_time_s: kernel_time_s + overhead_s,
        kernel_launches: launches,
        rpc_stats: services.stats(),
    })
}

/// Split one phase's warps into per-team blocks. Phases where only warp 0
/// works (the serial program parts) become a single one-warp kernel, as in
/// \[27\] where serial code stays on one team.
fn split_phase(phase: &Phase, num_teams: u32, warps_per_team: u32) -> Vec<BlockTrace> {
    let active: Vec<(usize, &MixedSeg)> = phase
        .warps
        .iter()
        .enumerate()
        .filter(|(_, w)| !w.is_empty())
        .collect();
    if active.is_empty() {
        return Vec::new();
    }
    let serial = active.len() == 1 && active[0].0 == 0;
    if serial {
        return vec![BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![Phase {
                    warps: vec![active[0].1.clone()],
                    label: phase.label.clone(),
                }],
                warp_count: 1,
            }],
            shared_mem_bytes: 0,
        }];
    }
    // Parallel phase: warps [t·W, (t+1)·W) belong to team t.
    let mut blocks = Vec::new();
    for t in 0..num_teams {
        let lo = (t * warps_per_team) as usize;
        let hi = ((t + 1) * warps_per_team) as usize;
        let warps: Vec<MixedSeg> = phase
            .warps
            .get(lo..hi.min(phase.warps.len()))
            .unwrap_or(&[])
            .to_vec();
        if warps.iter().all(|w| w.is_empty()) {
            continue;
        }
        let warp_count = warps.len() as u32;
        blocks.push(BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![Phase {
                    warps,
                    label: phase.label.clone(),
                }],
                warp_count,
            }],
            shared_mem_bytes: 0,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{run_ensemble, EnsembleOptions};
    use device_libc::dl_printf;
    use gpu_sim::{Gpu, KernelError};

    const MODULE: &str = r#"
module "mt" {
  func @main arity=2 calls(@printf, @kernel)
  func @kernel arity=1 !parallel(1) !order_independent
  extern func @printf variadic
}
"#;

    const MODULE_INELIGIBLE: &str = r#"
module "mtx" {
  func @main arity=2 calls(@printf, @kernel)
  func @kernel arity=1 !parallel(1)
  extern func @printf variadic
}
"#;

    fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
        let n: u64 = cx.argv.get(1).and_then(|v| v.parse().ok()).unwrap_or(4000);
        let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
        team.parallel_for("fill", n, |i, lane| {
            lane.work(4.0);
            lane.st_idx::<f64>(buf, i, i as f64)
        })?;
        let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
        team.serial("print", |lane| {
            dl_printf(lane, "sum %.1f\n", &[sum.into()])?;
            Ok(())
        })?;
        Ok(0)
    }

    fn app() -> HostApp {
        HostApp::new("mt", MODULE, stream_main)
    }

    #[test]
    fn multi_team_runs_and_matches_single_team_results() {
        let mut gpu = Gpu::a100();
        let res = run_multi_team(
            &mut gpu,
            &app(),
            &["20000"],
            8,
            128,
            HostServices::default(),
        )
        .unwrap();
        assert_eq!(res.exit_code, Some(0), "trap: {:?}", res.trap);
        let expected: f64 = (0..20000).map(|i| i as f64).sum();
        assert_eq!(res.stdout, format!("sum {expected:.1}\n"));
        assert!(res.kernel_launches >= 3); // alloc/serial, fill, sum, print
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn more_teams_speed_up_parallel_regions() {
        let time = |teams: u32| {
            let mut gpu = Gpu::a100();
            run_multi_team(
                &mut gpu,
                &app(),
                &["60000"],
                teams,
                128,
                HostServices::default(),
            )
            .unwrap()
            .kernel_time_s
        };
        let t1 = time(1);
        let t8 = time(8);
        assert!(t8 < t1, "8 teams ({t8:.2e}) should beat 1 team ({t1:.2e})");
    }

    #[test]
    fn ineligible_programs_are_refused() {
        let a = HostApp::new("mtx", MODULE_INELIGIBLE, stream_main);
        let mut gpu = Gpu::a100();
        let err = run_multi_team(&mut gpu, &a, &[], 8, 128, HostServices::default()).unwrap_err();
        assert!(matches!(err, MultiTeamError::NotEligible { .. }));
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn ensemble_beats_multi_team_on_independent_inputs() {
        // The paper's core argument: for N independent inputs, one ensemble
        // kernel beats N sequential multi-team runs (relaunch overhead and
        // imperfect region parallelism vs. N fully parallel teams).
        let n = 8u32;
        let mut gpu = Gpu::a100();
        let mt_total: f64 = (0..n)
            .map(|_| {
                run_multi_team(&mut gpu, &app(), &["4000"], 8, 128, HostServices::default())
                    .unwrap()
                    .kernel_time_s
            })
            .sum();
        let opts = EnsembleOptions {
            cycle_args: true,
            num_instances: n,
            thread_limit: 128,
            ..Default::default()
        };
        let ens = run_ensemble(
            &mut gpu,
            &app(),
            &[vec!["4000".to_string()]],
            &opts,
            HostServices::default(),
        )
        .unwrap();
        assert!(ens.all_succeeded());
        assert!(
            ens.kernel_time_s < mt_total,
            "ensemble {:.3e}s should beat {} sequential multi-team runs {:.3e}s",
            ens.kernel_time_s,
            n,
            mt_total
        );
    }
}
