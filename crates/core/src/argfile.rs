//! The command-line-argument file of the enhanced loader (paper §3.2):
//! each line holds the arguments for one application instance.

/// Argument-file problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgFileError {
    /// The file contains no argument lines at all.
    Empty,
}

impl std::fmt::Display for ArgFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgFileError::Empty => write!(f, "argument file contains no argument lines"),
        }
    }
}

impl std::error::Error for ArgFileError {}

/// Parse an argument file into per-instance argument vectors (without
/// `argv[0]`, which the loader prepends).
///
/// Splitting is by whitespace, as in the paper's Fig. 5. Extensions over
/// the proof of concept: blank lines and `#` comment lines are skipped,
/// and double-quoted tokens may contain spaces.
pub fn parse_arg_file(text: &str) -> Result<Vec<Vec<String>>, ArgFileError> {
    let mut lines = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        lines.push(split_arg_line(line));
    }
    if lines.is_empty() {
        return Err(ArgFileError::Empty);
    }
    Ok(lines)
}

/// Split one argument line by the file rules — whitespace-separated,
/// double-quoted tokens keep their spaces. Shared with the serving
/// daemon, whose JSONL job requests may carry `args` as a single string
/// that must tokenize exactly like an argument-file line.
pub fn split_arg_line(line: &str) -> Vec<String> {
    let mut args = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    args.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig5_file() {
        let text = "-a 1 -b -c data-1.bin\n-a 2 -b -c data-2.bin\n-a 1 -b -c data-3.bin\n-a 3 -b -c data-4.bin\n";
        let lines = parse_arg_file(text).unwrap();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], vec!["-a", "1", "-b", "-c", "data-1.bin"]);
        assert_eq!(lines[3], vec!["-a", "3", "-b", "-c", "data-4.bin"]);
    }

    #[test]
    fn skips_blanks_and_comments() {
        let text = "# instances for tonight's run\n\n-g 100\n   \n# done\n-g 200\n";
        let lines = parse_arg_file(text).unwrap();
        assert_eq!(lines, vec![vec!["-g", "100"], vec!["-g", "200"]]);
    }

    #[test]
    fn quoted_tokens_keep_spaces() {
        let lines = parse_arg_file("-f \"my data.bin\" -x\n").unwrap();
        assert_eq!(lines[0], vec!["-f", "my data.bin", "-x"]);
    }

    #[test]
    fn empty_file_rejected() {
        assert_eq!(parse_arg_file(""), Err(ArgFileError::Empty));
        assert_eq!(
            parse_arg_file("# only comments\n"),
            Err(ArgFileError::Empty)
        );
    }

    #[test]
    fn repeated_whitespace_collapses() {
        let lines = parse_arg_file("-a    1\t-b\n").unwrap();
        assert_eq!(lines[0], vec!["-a", "1", "-b"]);
    }
}
