use crate::app::{build_globals, AppContext, HostApp};
use dgc_compiler::{compile, CompileError, CompiledImage, CompilerOptions};
use dgc_ir::{Attr, Function, Module, ParseError};
use dgc_obs::{record_schedule, Recorder, PID_HOST};
use gpu_mem::{AllocError, Backing, DevicePtr, TransferDirection};
use gpu_sim::{Gpu, KernelSpec, SimError, TeamOutcome};
use host_rpc::{HostServices, RpcClient, RpcServer, RpcStats};
use serde::Value;
use std::collections::BTreeMap;

/// Heap-region tag used for module globals (shared by all instances, so it
/// must not collide with instance ids).
pub(crate) const GLOBALS_TAG: u32 = u32::MAX;

/// Loader failures.
#[derive(Debug)]
pub enum LoaderError {
    /// The application's module text did not parse.
    ModuleParse(ParseError),
    /// The compiler pipeline rejected the module.
    Compile(CompileError),
    /// Kernel launch failed (bad configuration).
    Launch(SimError),
    /// Device allocation for module globals failed.
    Globals(AllocError),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::ModuleParse(e) => write!(f, "module parse error: {e}"),
            LoaderError::Compile(e) => write!(f, "compilation failed: {e}"),
            LoaderError::Launch(e) => write!(f, "{e}"),
            LoaderError::Globals(e) => write!(f, "global allocation failed: {e}"),
        }
    }
}

impl std::error::Error for LoaderError {}

/// Result of running one application instance through the plain loader.
#[derive(Debug)]
pub struct AppRunResult {
    /// `__user_main`'s return value (or the `exit()` code if the app called
    /// it, which takes precedence like on a real host).
    pub exit_code: Option<i32>,
    /// Set if the instance trapped instead of returning.
    pub trap: Option<String>,
    pub stdout: String,
    pub stderr: String,
    pub report: gpu_sim::SimReport,
    /// Host↔device transfer time (argv mapping, result copy-back).
    pub transfer_seconds: f64,
    pub rpc_stats: RpcStats,
    /// Segment traces when [`Loader::keep_traces`] was set.
    pub block_traces: Option<Vec<gpu_sim::BlockTrace>>,
    /// Stall-cycle attribution when [`Loader::collect_stalls`] was set.
    pub stalls: Option<gpu_sim::StallAttribution>,
}

/// The original direct-GPU-compilation loader \[26\]: compiles the whole
/// application as device code and runs it as a **single team**.
pub struct Loader {
    pub compiler: CompilerOptions,
    /// Threads the single team may use (the `-t` of the enhanced loader,
    /// defaulted to the hardware block maximum as in \[26\]).
    pub thread_limit: u32,
    /// Keep the kernel's segment traces in the result for per-phase
    /// profiling.
    pub keep_traces: bool,
    /// Attribute every simulated cycle to a stall bucket
    /// ([`AppRunResult::stalls`]); pure bookkeeping, never changes timing.
    pub collect_stalls: bool,
}

impl Default for Loader {
    fn default() -> Self {
        Self {
            compiler: CompilerOptions::default(),
            thread_limit: 1024,
            keep_traces: false,
            collect_stalls: false,
        }
    }
}

impl Loader {
    /// Parse and compile the application's module, then splice in the main
    /// wrapper (the new host entry point) exactly as the framework links
    /// it: `main` (wrapper) → maps args → calls `__user_main`.
    pub fn compile_app(&self, app: &HostApp) -> Result<CompiledImage, LoaderError> {
        let module = Module::parse(&app.module_text).map_err(LoaderError::ModuleParse)?;
        let mut image = compile(module, &self.compiler).map_err(LoaderError::Compile)?;
        inject_main_wrapper(&mut image.module);
        Ok(image)
    }

    /// Run `app` once on `gpu` with the given arguments (excluding
    /// `argv[0]`, which the loader provides).
    pub fn run(
        &self,
        gpu: &mut Gpu,
        app: &HostApp,
        args: &[&str],
        services: HostServices,
    ) -> Result<AppRunResult, LoaderError> {
        self.run_traced(gpu, app, args, services, &mut Recorder::disabled())
    }

    /// [`Loader::run`] with an observability [`Recorder`]: records the
    /// loader timeline (compile, argument H2D, kernel envelope, result
    /// D2H) and the device schedule when the recorder is enabled.
    pub fn run_traced(
        &self,
        gpu: &mut Gpu,
        app: &HostApp,
        args: &[&str],
        mut services: HostServices,
        obs: &mut Recorder,
    ) -> Result<AppRunResult, LoaderError> {
        let traced = obs.is_enabled();
        if traced {
            obs.name_process(PID_HOST, "loader");
            obs.name_thread(PID_HOST, 0, "timeline");
        }
        let image = self.compile_app(app)?;
        if traced {
            obs.instant(PID_HOST, 0, "compile + link wrapper", "loader", 0.0);
        }
        let argv: Vec<String> = std::iter::once(app.name.to_string())
            .chain(args.iter().map(|s| s.to_string()))
            .collect();
        services_default_files(&mut services);

        // Map program arguments to the device (main-wrapper behaviour).
        let argv_bytes: u64 = argv.iter().map(|a| a.len() as u64 + 1).sum();
        let h2d_s = gpu
            .transfers
            .record(TransferDirection::HostToDevice, argv_bytes);
        let mut transfer_seconds = h2d_s;
        if traced {
            obs.span_args(
                PID_HOST,
                0,
                "h2d argv",
                "loader",
                0.0,
                h2d_s * 1e6,
                vec![("bytes".into(), Value::U64(argv_bytes))],
            );
        }

        let device_globals = alloc_device_globals(gpu, &image).map_err(LoaderError::Globals)?;
        if traced {
            obs.instant(PID_HOST, 0, "alloc globals", "loader", h2d_s * 1e6);
        }

        let (server, client) = RpcServer::spawn(services);
        let footprint = app
            .footprint_scale
            .map(|f| f(&argv))
            .unwrap_or(1.0)
            .max(1.0);

        let mut spec = KernelSpec::new(app.name, 1, self.thread_limit);
        spec.rpc_services = Some(image.rpc_services.iter().copied().collect());
        spec.footprint_multiplier = footprint;
        spec.keep_traces = self.keep_traces;
        spec.collect_detail = traced;
        spec.collect_stalls = self.collect_stalls;
        let main_fn = app.main;
        let argv_ref = &argv;
        let image_ref = &image;
        let dg_ref = &device_globals;
        let mut hook = make_rpc_hook(&client);
        let launch = gpu.launch(&spec, Some(&mut hook), move |team| {
            let globals = build_globals(team, image_ref, dg_ref)?;
            let cx = AppContext {
                argv: argv_ref.clone(),
                globals,
                instance: team.team_id(),
                num_instances: 1,
            };
            main_fn(team, &cx)
        });

        // Tear down device state regardless of launch outcome.
        gpu.mem.free_by_tag(0);
        gpu.mem.free_by_tag(GLOBALS_TAG);
        let services = server.shutdown();
        let launch = launch.map_err(LoaderError::Launch)?;

        // map(from: Ret) — copy the return code back.
        let d2h_s = gpu.transfers.record(TransferDirection::DeviceToHost, 4);
        transfer_seconds += d2h_s;

        if traced {
            let kernel_start_us = h2d_s * 1e6;
            let kernel_us = launch.report.sim_time_s * 1e6;
            obs.span_args(
                PID_HOST,
                0,
                app.name,
                "kernel",
                kernel_start_us,
                kernel_us,
                vec![("blocks".into(), Value::U64(launch.report.blocks as u64))],
            );
            if let Some(sched) = &launch.schedule {
                record_schedule(
                    obs,
                    sched,
                    gpu.spec.cycles_to_seconds(1.0) * 1e6,
                    kernel_start_us + gpu.spec.launch_overhead_us,
                );
            }
            obs.span(
                PID_HOST,
                0,
                "d2h results",
                "loader",
                kernel_start_us + kernel_us,
                d2h_s * 1e6,
            );
        }

        let (exit_code, trap) = match &launch.team_outcomes[0] {
            TeamOutcome::Return(c) => (Some(services.exit_code_of(0).unwrap_or(*c)), None),
            TeamOutcome::Trap(e) => (services.exit_code_of(0), Some(e.to_string())),
        };
        Ok(AppRunResult {
            exit_code,
            trap,
            stdout: services.stdout_of(0).to_string(),
            stderr: services.stderr_of(0).to_string(),
            report: launch.report,
            transfer_seconds,
            rpc_stats: services.stats(),
            block_traces: launch.block_traces,
            stalls: launch.stalls,
        })
    }
}

/// Insert the loader's main wrapper into a compiled module: the new host
/// entry point that maps arguments and invokes `__user_main` (paper §2.2).
pub(crate) fn inject_main_wrapper(module: &mut Module) {
    if module.function("main").is_some() {
        return;
    }
    module.add_function(
        Function::defined("main", 2)
            .with_callees(&["__user_main"])
            .with_attr(Attr::MainWrapper),
    );
}

/// Allocate device-global/constant module globals once per launch, tagged
/// [`GLOBALS_TAG`].
pub(crate) fn alloc_device_globals(
    gpu: &mut Gpu,
    image: &CompiledImage,
) -> Result<BTreeMap<String, DevicePtr>, AllocError> {
    let mut out = BTreeMap::new();
    for g in &image.module.globals {
        if g.placement == dgc_ir::GlobalPlacement::TeamShared {
            continue;
        }
        let ptr = gpu
            .mem
            .alloc_tagged(g.size, Backing::Materialized, GLOBALS_TAG)?;
        out.insert(g.name.clone(), ptr);
    }
    Ok(out)
}

/// Build the simulator host-call hook from an RPC client.
pub(crate) fn make_rpc_hook(
    client: &RpcClient,
) -> impl FnMut(u32, &[u8]) -> Result<Vec<u8>, String> + '_ {
    move |_service, payload| client.call_raw(payload).map_err(|e| e.to_string())
}

fn services_default_files(_services: &mut HostServices) {
    // Hook for future default files (e.g. /proc-style metadata); kept so
    // the loaders share one place to extend.
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_libc::dl_printf;
    use gpu_sim::TeamCtx;

    const MODULE: &str = r#"
module "hello" {
  global @counter size=8 align=8
  func @main arity=2 calls(@printf, @work)
  func @work arity=0 calls(@malloc)
  extern func @printf variadic
  extern func @malloc
}
"#;

    fn hello_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, gpu_sim::KernelError> {
        let argv1 = cx.argv.get(1).cloned().unwrap_or_default();
        team.serial("main", |lane| {
            dl_printf(
                lane,
                "hello from %s arg=%s\n",
                &[cx.argv[0].as_str().into(), argv1.as_str().into()],
            )?;
            Ok(())
        })?;
        Ok(0)
    }

    fn app() -> HostApp {
        HostApp::new("hello", MODULE, hello_main)
    }

    #[test]
    fn plain_loader_runs_single_team() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &app(), &["-x"], HostServices::default())
            .unwrap();
        assert_eq!(res.exit_code, Some(0));
        assert!(res.trap.is_none());
        assert_eq!(res.stdout, "hello from hello arg=-x\n");
        assert_eq!(res.report.blocks, 1);
        assert!(res.report.sim_time_s > 0.0);
        assert!(res.transfer_seconds > 0.0);
        assert_eq!(res.rpc_stats.stdio_calls, 1);
        // Loader cleaned the device heap.
        assert_eq!(gpu.mem.stats().live_allocations, 0);
    }

    #[test]
    fn traced_loader_run_is_identical_and_records_timeline() {
        let mut gpu = Gpu::a100();
        let plain = Loader::default()
            .run(&mut gpu, &app(), &["-x"], HostServices::default())
            .unwrap();
        let mut gpu = Gpu::a100();
        let mut obs = Recorder::enabled();
        let traced = Loader::default()
            .run_traced(&mut gpu, &app(), &["-x"], HostServices::default(), &mut obs)
            .unwrap();
        assert_eq!(plain.report, traced.report);
        assert_eq!(plain.stdout, traced.stdout);
        let cats: Vec<&str> = obs.events().iter().map(|e| e.cat.as_str()).collect();
        for want in ["loader", "kernel", "block", "phase"] {
            assert!(cats.contains(&want), "missing {want} events in {cats:?}");
        }
        // The exported document is a valid Chrome trace.
        assert!(dgc_obs::validate_chrome_trace(&obs.to_chrome_trace()).unwrap() > 0);
    }

    #[test]
    fn loader_collects_stall_attribution_on_request() {
        let mut gpu = Gpu::a100();
        let loader = Loader {
            collect_stalls: true,
            ..Default::default()
        };
        let res = loader
            .run(&mut gpu, &app(), &["-x"], HostServices::default())
            .unwrap();
        let st = res.stalls.as_ref().unwrap();
        assert_eq!(st.kernel.total(), res.report.kernel_cycles);
        assert_eq!(st.blocks.len(), 1);
        // The hello app spends a printf round trip: RPC stall shows up.
        assert!(st.kernel.rpc > 0.0, "{:?}", st.kernel);
        // Off by default.
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &app(), &["-x"], HostServices::default())
            .unwrap();
        assert!(res.stalls.is_none());
    }

    #[test]
    fn compile_app_injects_wrapper_and_stubs() {
        let image = Loader::default().compile_app(&app()).unwrap();
        let wrapper = image.module.function("main").unwrap();
        assert!(wrapper.attrs.has(&Attr::MainWrapper));
        assert_eq!(wrapper.callees, vec!["__user_main"]);
        assert!(image.module.function("__rpc_printf").is_some());
        assert!(image.rpc_services.contains(&host_rpc::SERVICE_STDIO));
    }

    #[test]
    fn unparseable_module_reports() {
        let mut a = app();
        a.module_text = "not a module".into();
        let mut gpu = Gpu::a100();
        assert!(matches!(
            Loader::default().run(&mut gpu, &a, &[], HostServices::default()),
            Err(LoaderError::ModuleParse(_))
        ));
    }

    #[test]
    fn rpc_service_without_stub_is_trapped() {
        // An app whose module never calls fopen, but whose code tries to:
        // the compiled image has no FS stub, so the call traps.
        fn sneaky_main(
            team: &mut TeamCtx<'_>,
            _cx: &AppContext,
        ) -> Result<i32, gpu_sim::KernelError> {
            team.serial("main", |lane| {
                device_libc::file::dl_fopen(lane, "f", "r")?;
                Ok(())
            })?;
            Ok(0)
        }
        let a = HostApp::new("sneaky", MODULE, sneaky_main);
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &a, &[], HostServices::default())
            .unwrap();
        assert!(res.trap.as_deref().unwrap_or("").contains("no RPC stub"));
    }

    #[test]
    fn explicit_exit_code_wins() {
        fn exit_main(
            team: &mut TeamCtx<'_>,
            _cx: &AppContext,
        ) -> Result<i32, gpu_sim::KernelError> {
            team.serial("main", |lane| device_libc::stdio::dl_exit(lane, 3))?;
            Ok(0)
        }
        const MODULE_EXIT: &str = r#"
module "exiter" {
  func @main arity=2 calls(@exit)
  extern func @exit
}
"#;
        let a = HostApp::new("exiter", MODULE_EXIT, exit_main);
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &a, &[], HostServices::default())
            .unwrap();
        assert_eq!(res.exit_code, Some(3));
    }
}
