//! Ensemble execution for direct GPU compilation — the offload runtime and
//! loaders (the paper's primary contribution).
//!
//! Three execution modes are provided, mirroring the lineage of the papers:
//!
//! * [`Loader`] — the original direct-GPU-compilation loader \[26\]: one
//!   application instance runs as a single team on the device, with the
//!   *main wrapper* as the new host entry point, command-line arguments
//!   mapped to the device, and the RPC service thread started.
//! * [`run_ensemble`] — **this paper's enhanced loader**: `NI` instances of
//!   the application run concurrently inside one kernel launch, instance
//!   `i` mapped to team `i` via the equivalent of
//!   `target teams distribute num_teams(N) thread_limit(T)` (Fig. 4), each
//!   instance receiving its own argv line from the argument file (Fig. 5).
//! * [`MappingStrategy::Packed`] — the §3.1 `(N/M, M, 1)` intra-block
//!   packing the paper describes but leaves unimplemented; implemented here
//!   as an extension.
//!
//! The loaders drive the full substrate: the module IR is compiled by
//! `dgc-compiler` (declare-target marking, `main` renaming, RPC stub
//! generation, globals placement), the resulting image decides which RPC
//! services are reachable and where globals live, and the kernel executes
//! on the `gpu-sim` device with per-instance heap tagging — which is what
//! the DRAM-interference model observes.

mod app;
mod argfile;
mod argscript;
mod ensemble;
mod loader;
mod multiteam;
mod stats;

pub use app::{AppContext, AppMainFn, GlobalSlot, HostApp};
pub use argfile::{parse_arg_file, split_arg_line, ArgFileError};
pub use argscript::{eval_expr, expand_arg_script, ScriptError};
pub use ensemble::{
    ensure_arg_capacity, format_eta_s, parse_ensemble_cli, run_ensemble, run_ensemble_batched,
    run_ensemble_batched_progress, run_ensemble_batched_traced, run_ensemble_injected,
    run_ensemble_traced, CliError, EnsembleCliArgs, EnsembleError, EnsembleOptions, EnsembleResult,
    HeapUsage, InstanceOutcome, LaunchFaults, MappingStrategy, DEFAULT_MONITOR_INTERVAL_MS,
    DEFAULT_SAMPLE_INTERVAL,
};
pub use loader::{AppRunResult, Loader, LoaderError};
pub use multiteam::{run_multi_team, MultiTeamError, MultiTeamResult};
pub use stats::{
    relative_speedup, utilization_mean, utilization_p95, SpeedupPoint, SpeedupSeries, StatsError,
};
