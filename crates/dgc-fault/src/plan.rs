//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is a declarative, JSON-serializable description of the
//! faults to inject into an ensemble run: which instance, on which
//! recovery attempt, and what goes wrong. The plan is *pure data* — the
//! same plan against the same workload always injects the same faults at
//! the same points, so failing runs replay exactly (the whole point of
//! testing recovery inside a deterministic simulator).

use gpu_sim::InjectedTeamFault;
use host_rpc::{Request, RpcFault, RpcFaultHook};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What goes wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The matched team traps before the application body runs.
    Trap { message: String },
    /// The matched team traps with a device out-of-memory — but only
    /// while at least `min_concurrent` instances share the kernel.
    /// Models the paper's Page-Rank memory wall as a *recoverable*
    /// event: once the resilient driver halves the batch below the
    /// threshold, the instances fit and complete.
    DeviceOom {
        min_concurrent: u32,
        requested_bytes: u64,
    },
    /// The matched team hangs for `stall_cycles` extra device cycles
    /// after its real work — watchdog bait.
    Hang { stall_cycles: f64 },
    /// The matched instance's RPC round trips fail (typed
    /// `Response::Err`, no host side effects) starting with its
    /// `after_calls`-th call of the launch.
    RpcFail { after_calls: u64 },
    /// Same trigger, but the reply wire bytes are corrupted instead —
    /// exercises the device-side decode hardening.
    RpcCorrupt { after_calls: u64 },
}

/// One fault: kind plus instance/attempt filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Global instance id to target; `None` targets every instance.
    pub instance: Option<u32>,
    /// Recovery attempt to fire on (0 = first launch); `None` fires on
    /// every attempt, which makes the fault unrecoverable by retry.
    pub attempt: Option<u32>,
    pub kind: FaultKind,
}

impl FaultSpec {
    fn matches(&self, instance: u32, attempt: u32) -> bool {
        self.instance.map(|i| i == instance).unwrap_or(true)
            && self.attempt.map(|a| a == attempt).unwrap_or(true)
    }
}

/// A whole simulated device dying: from recovery round `at_attempt` on,
/// the device is gone — instances placed there fail that round and must
/// re-shard onto the survivors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDeath {
    /// Fleet device index to kill.
    pub device: u32,
    /// Recovery attempt at which the device dies (0 = first launch).
    pub at_attempt: u32,
}

/// A seeded, replayable set of faults for one ensemble run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (bookkeeping; constructors that
    /// scatter faults record it here so a plan file is self-describing).
    pub seed: u64,
    pub faults: Vec<FaultSpec>,
    /// Whole-device deaths, honoured only by the sharded resilient
    /// driver (single-device drivers have no fleet to re-shard over).
    /// `Option` so plan files written before multi-device support still
    /// parse.
    pub device_deaths: Option<Vec<DeviceDeath>>,
}

/// splitmix64 — tiny, dependency-free, full-period generator; plenty for
/// scattering faults reproducibly (and for the recovery driver's seeded
/// backoff jitter, which shares the generator so one seed scheme covers
/// the whole crate).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse a plan from its JSON form (the `--faults <plan.json>` file).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan: {e}"))
    }

    /// Serialize for a plan file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plan serializes")
    }

    /// Scatter `count` first-attempt traps over distinct pseudo-random
    /// instances of `0..instances`. Same seed → same plan.
    pub fn scatter_traps(seed: u64, instances: u32, count: u32) -> Self {
        let mut ids: Vec<u32> = (0..instances).collect();
        let mut state = seed;
        // Partial Fisher–Yates: the first `count` slots are the picks.
        let count = count.min(instances) as usize;
        for i in 0..count {
            let j = i + (splitmix64(&mut state) as usize) % (ids.len() - i);
            ids.swap(i, j);
        }
        let faults = ids[..count]
            .iter()
            .map(|&i| FaultSpec {
                instance: Some(i),
                attempt: Some(0),
                kind: FaultKind::Trap {
                    message: format!("scattered fault on instance {i}"),
                },
            })
            .collect();
        Self {
            seed,
            faults,
            device_deaths: None,
        }
    }

    /// Team-level fault for `instance` on `attempt`, given that
    /// `concurrent` instances share the kernel. First matching spec wins;
    /// RPC faults are handled by [`FaultPlan::rpc_hook`], not here.
    pub fn fault_for(
        &self,
        instance: u32,
        attempt: u32,
        concurrent: u32,
    ) -> Option<InjectedTeamFault> {
        self.faults
            .iter()
            .filter(|s| s.matches(instance, attempt))
            .find_map(|s| match &s.kind {
                FaultKind::Trap { message } => Some(InjectedTeamFault::Trap(message.clone())),
                FaultKind::DeviceOom {
                    min_concurrent,
                    requested_bytes,
                } if concurrent >= *min_concurrent => Some(InjectedTeamFault::DeviceOom {
                    requested: *requested_bytes,
                }),
                FaultKind::DeviceOom { .. } => None,
                FaultKind::Hang { stall_cycles } => Some(InjectedTeamFault::Hang {
                    stall_cycles: *stall_cycles,
                }),
                FaultKind::RpcFail { .. } | FaultKind::RpcCorrupt { .. } => None,
            })
    }

    /// Whether `device` dies exactly at recovery round `attempt` — the
    /// round where its placed instances fail and re-shard.
    pub fn device_dies_at(&self, device: u32, attempt: u32) -> bool {
        self.device_deaths
            .as_deref()
            .unwrap_or_default()
            .iter()
            .any(|d| d.device == device && d.at_attempt == attempt)
    }

    /// Whether `device` is already dead *before* round `attempt` starts
    /// (and must therefore be excluded from placement).
    pub fn device_dead_before(&self, device: u32, attempt: u32) -> bool {
        self.device_deaths
            .as_deref()
            .unwrap_or_default()
            .iter()
            .any(|d| d.device == device && d.at_attempt < attempt)
    }

    /// Server-side RPC interceptor for one launch of `attempt`, where
    /// local instance `l` of the kernel is global instance `globals[l]`.
    /// `None` when no RPC fault applies to this attempt — the launch then
    /// uses the exact no-interceptor path.
    pub fn rpc_hook(&self, attempt: u32, globals: &[u32]) -> Option<RpcFaultHook> {
        // (global-instance filter, fire threshold, corrupt?) per live spec.
        let specs: Vec<(Option<u32>, u64, bool)> = self
            .faults
            .iter()
            .filter(|s| s.attempt.map(|a| a == attempt).unwrap_or(true))
            .filter_map(|s| match s.kind {
                FaultKind::RpcFail { after_calls } => Some((s.instance, after_calls, false)),
                FaultKind::RpcCorrupt { after_calls } => Some((s.instance, after_calls, true)),
                _ => None,
            })
            .collect();
        if specs.is_empty() {
            return None;
        }
        let globals = globals.to_vec();
        let mut calls: HashMap<u32, u64> = HashMap::new();
        Some(Box::new(move |req: &Request| {
            let local = instance_of(req);
            let global = *globals.get(local as usize)?;
            let k = calls.entry(local).or_insert(0);
            let call_index = *k;
            *k += 1;
            for &(filter, after, corrupt) in &specs {
                let hit = filter.map(|i| i == global).unwrap_or(true);
                if hit && call_index >= after {
                    return Some(if corrupt {
                        RpcFault::Corrupt
                    } else {
                        RpcFault::Fail(format!("injected RPC failure for instance {global}"))
                    });
                }
            }
            None
        }))
    }
}

/// The issuing instance of a request (every variant carries one).
fn instance_of(req: &Request) -> u32 {
    match req {
        Request::Stdout { instance, .. }
        | Request::Stderr { instance, .. }
        | Request::FOpen { instance, .. }
        | Request::FClose { instance, .. }
        | Request::FRead { instance, .. }
        | Request::FWrite { instance, .. }
        | Request::FSeek { instance, .. }
        | Request::Clock { instance }
        | Request::Exit { instance, .. } => *instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan {
            device_deaths: None,
            seed: 7,
            faults: vec![
                FaultSpec {
                    instance: Some(2),
                    attempt: Some(0),
                    kind: FaultKind::Trap {
                        message: "boom".into(),
                    },
                },
                FaultSpec {
                    instance: None,
                    attempt: None,
                    kind: FaultKind::DeviceOom {
                        min_concurrent: 5,
                        requested_bytes: 1 << 30,
                    },
                },
                FaultSpec {
                    instance: Some(0),
                    attempt: Some(1),
                    kind: FaultKind::RpcCorrupt { after_calls: 3 },
                },
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert!(FaultPlan::from_json("{nope").is_err());
    }

    #[test]
    fn scatter_is_deterministic_and_distinct() {
        let a = FaultPlan::scatter_traps(42, 16, 5);
        let b = FaultPlan::scatter_traps(42, 16, 5);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
        let mut ids: Vec<u32> = a.faults.iter().map(|f| f.instance.unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "instances must be distinct");
        assert!(ids.iter().all(|&i| i < 16));
        // A different seed scatters differently (16 choose 5 is large
        // enough that a collision would be a smoking gun).
        let c = FaultPlan::scatter_traps(43, 16, 5);
        assert_ne!(a, c);
        // Over-asking clamps to the population.
        assert_eq!(FaultPlan::scatter_traps(1, 3, 9).faults.len(), 3);
    }

    #[test]
    fn fault_for_applies_filters_and_oom_threshold() {
        let plan = FaultPlan {
            device_deaths: None,
            seed: 0,
            faults: vec![
                FaultSpec {
                    instance: Some(1),
                    attempt: Some(0),
                    kind: FaultKind::Trap {
                        message: "t".into(),
                    },
                },
                FaultSpec {
                    instance: None,
                    attempt: None,
                    kind: FaultKind::DeviceOom {
                        min_concurrent: 5,
                        requested_bytes: 64,
                    },
                },
            ],
        };
        assert_eq!(
            plan.fault_for(1, 0, 1),
            Some(InjectedTeamFault::Trap("t".into()))
        );
        // Wrong instance or attempt: the trap does not fire.
        assert_eq!(plan.fault_for(2, 0, 1), None);
        assert_eq!(plan.fault_for(1, 1, 1), None);
        // The OOM fires only at or above the concurrency threshold.
        assert_eq!(
            plan.fault_for(3, 2, 8),
            Some(InjectedTeamFault::DeviceOom { requested: 64 })
        );
        assert_eq!(plan.fault_for(3, 2, 4), None);
    }

    #[test]
    fn rpc_hook_counts_calls_per_instance() {
        let plan = FaultPlan {
            device_deaths: None,
            seed: 0,
            faults: vec![FaultSpec {
                instance: Some(7),
                attempt: Some(0),
                kind: FaultKind::RpcFail { after_calls: 2 },
            }],
        };
        // Local instance 1 is global instance 7 in this launch.
        let mut hook = plan.rpc_hook(0, &[4, 7]).unwrap();
        let req = |instance| Request::Clock { instance };
        // First two calls pass, the third fails; other instances never do.
        assert_eq!(hook(&req(1)), None);
        assert_eq!(hook(&req(0)), None);
        assert_eq!(hook(&req(1)), None);
        assert!(matches!(hook(&req(1)), Some(RpcFault::Fail(_))));
        assert_eq!(hook(&req(0)), None);
        // The fault targets attempt 0 only; no hook for attempt 1.
        assert!(plan.rpc_hook(1, &[4, 7]).is_none());
        assert!(FaultPlan::default().rpc_hook(0, &[0]).is_none());
    }
}
