//! The resilient ensemble driver.
//!
//! Wraps the batched ensemble path with per-instance recovery: failed
//! instances are re-launched in follow-up kernels with exponential
//! backoff in *simulated* time, a device OOM optionally halves the
//! concurrent batch (the paper's §4.3 Page-Rank memory wall becomes a
//! recoverable event instead of a dead end), and a watchdog budget reaps
//! hung instances without killing the rest of the launch.
//!
//! With an empty [`FaultPlan`] and no watchdog budget the driver is pure
//! bookkeeping: it replicates `run_ensemble_batched`'s accumulation
//! order exactly, so results — times, stalls, metrics, trace — are
//! bit-identical (property-tested).

use crate::plan::FaultPlan;
use dgc_core::{
    ensure_arg_capacity, run_ensemble_injected, EnsembleError, EnsembleOptions, EnsembleResult,
    HeapUsage, HostApp, InstanceOutcome, LaunchFaults,
};
use dgc_obs::{
    InstanceMetrics, LaunchMetrics, LaunchTimeline, Recorder, RpcCallCounts, SpanGraph, PID_HOST,
};
use dgc_sched::{mem_cap_take, InstanceCosts};
use gpu_sim::{Gpu, StallBuckets};
use host_rpc::{HostServices, RpcStats};
use serde::Value;

/// How hard to try before giving up on an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Launch attempts per instance (≥ 1; 1 disables retries).
    pub max_attempts: u32,
    /// Simulated wait before the first retry round, seconds.
    pub backoff_base_s: f64,
    /// Exponential growth of the wait per further retry round.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff wait, seconds. The exponential
    /// `base * factor^(attempt-1)` overflows to `inf` within a few dozen
    /// rounds under a large `max_attempts`; the clamp keeps `backoff_s`
    /// and `total_time_s` finite no matter the policy.
    pub backoff_max_s: f64,
    /// Halve the concurrent batch after a round with device OOMs.
    pub oom_split: bool,
    /// Watchdog: per-instance cycle budget for every launch.
    pub instance_cycle_budget: Option<f64>,
    /// Abort all remaining work once one instance exhausts its attempts.
    pub fail_fast: bool,
    /// Opt-in deterministic backoff jitter: `Some(seed)` de-synchronizes
    /// retry storms by scaling each instance's wait with a splitmix64
    /// hash of seed × instance × attempt (factor in `[0.5, 1.0)`). The
    /// default `None` keeps every existing golden bit-identical.
    pub jitter_seed: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_s: 1e-3,
            backoff_factor: 2.0,
            backoff_max_s: 10.0,
            oom_split: true,
            instance_cycle_budget: None,
            fail_fast: false,
            jitter_seed: None,
        }
    }
}

impl RecoveryPolicy {
    /// Simulated wait before retry round `attempt` (≥ 1):
    /// `base * factor^(attempt-1)`, saturating at
    /// [`RecoveryPolicy::backoff_max_s`]. A non-finite intermediate
    /// (overflowed exponential) also lands on the ceiling, so the wait is
    /// always finite.
    pub fn backoff_wait_s(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(i32::MAX as u32) as i32;
        let raw = self.backoff_base_s * self.backoff_factor.powi(exp);
        if raw.is_finite() {
            raw.min(self.backoff_max_s)
        } else {
            self.backoff_max_s
        }
    }

    /// `instance`'s wait before retry round `attempt` under the opt-in
    /// jitter: the clamped exponential scaled by a deterministic factor
    /// in `[0.5, 1.0)` drawn from splitmix64 over
    /// `jitter_seed × instance × attempt`. Identical policies replay
    /// identical waits; instances sharing a round spread out instead of
    /// retrying in lockstep. With [`RecoveryPolicy::jitter_seed`] unset
    /// this is exactly [`RecoveryPolicy::backoff_wait_s`].
    pub fn backoff_wait_jittered_s(&self, attempt: u32, instance: u32) -> f64 {
        let base = self.backoff_wait_s(attempt);
        let Some(seed) = self.jitter_seed else {
            return base;
        };
        let mut state = seed
            .wrapping_add(u64::from(instance).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        // 53 high-quality bits → uniform in [0, 1).
        let unit = (crate::plan::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        base * (0.5 + 0.5 * unit)
    }
}

/// What recovery did, for the metrics rollup and exit-status decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Recovery rounds executed (1 = no retries were needed).
    pub attempts: u32,
    /// Distinct instances re-launched at least once.
    pub retried: u32,
    /// Instances that failed at least once but ultimately succeeded.
    pub recovered: u32,
    /// Instances still failed (or skipped) at the end.
    pub unrecovered: u32,
    /// Instances never launched or re-launched because of `fail_fast`
    /// (subset of `unrecovered`).
    pub skipped: u32,
    /// Cumulative failed instance-attempts across all rounds.
    pub failures: u32,
    /// Cumulative device-OOM instance-attempts.
    pub oom_failures: u32,
    /// Cumulative watchdog kills.
    pub timeouts: u32,
    /// Times the concurrent batch was halved.
    pub oom_splits: u32,
    /// Concurrent batch size in effect at the end.
    pub final_batch: u32,
    /// Total simulated backoff wait, seconds (part of `total_time_s`).
    pub backoff_s: f64,
}

/// Result of a resilient run: the merged ensemble result (final outcome
/// per instance) plus the recovery story.
#[derive(Debug)]
pub struct ResilientResult {
    pub ensemble: EnsembleResult,
    pub recovery: RecoveryStats,
    /// Launch-sequence name for the metrics rollup (`app-x<N>`; the
    /// inner report keeps its last chunk's kernel name untouched).
    kernel: String,
}

impl ResilientResult {
    pub fn all_succeeded(&self) -> bool {
        self.ensemble.all_succeeded()
    }

    /// Launch rollup with the schema-v3 recovery fields filled in.
    /// `failed`/`oom` count failures cumulatively across attempts;
    /// `unrecovered` is what survived recovery.
    pub fn launch_metrics(&self) -> LaunchMetrics {
        let mut lm = self.ensemble.launch_metrics();
        lm.kernel = self.kernel.clone();
        lm.failed = self.recovery.failures;
        lm.oom = self.recovery.oom_failures;
        lm.attempts = self.recovery.attempts;
        lm.retried = self.recovery.retried;
        lm.recovered = self.recovery.recovered;
        lm.unrecovered = self.recovery.unrecovered;
        lm.oom_splits = self.recovery.oom_splits;
        lm.final_batch = self.recovery.final_batch;
        lm.backoff_s = self.recovery.backoff_s;
        lm
    }
}

/// Placeholder metrics for an instance that was never (re-)launched.
pub(crate) fn skipped_metrics(instance: u32, end_time_s: f64) -> InstanceMetrics {
    InstanceMetrics {
        instance,
        exit_code: None,
        trapped: true,
        oom: false,
        timed_out: false,
        attempt: 0,
        device: 0,
        end_time_s,
        cycles: 0.0,
        warp_insts: 0.0,
        useful_bytes: 0.0,
        moved_bytes: 0.0,
        sectors: 0,
        heap_peak_bytes: 0,
        rpc: RpcCallCounts::default(),
        rpc_stall_s: 0.0,
        stall: StallBuckets::default(),
    }
}

/// Run an ensemble under fault injection with per-instance recovery.
///
/// `batch` bounds the concurrent instances per kernel (`0` = all `N`
/// concurrent). Failed instances are retried in follow-up kernels, up to
/// [`RecoveryPolicy::max_attempts`] launches each, with exponential
/// backoff between rounds; after a round with device OOMs the batch is
/// halved ([`RecoveryPolicy::oom_split`]). Instances that exit non-zero
/// are *not* retried — a deterministic application result is not a
/// fault.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_resilient(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &mut Recorder,
) -> Result<ResilientResult, EnsembleError> {
    run_ensemble_resilient_mem_aware(gpu, app, arg_lines, opts, batch, plan, policy, obs, None)
}

/// [`run_ensemble_resilient`] with opt-in **memory-aware packing**.
///
/// With pilot `costs` supplied, the device heap switches to the
/// per-team free-list allocator and every chunk is sized to the largest
/// prefix of pending instances whose summed pilot peaks fit the device
/// ([`mem_cap_take`]) — memory-hungry ensembles pack to capacity up
/// front instead of discovering it by OOM-then-halving. The halving
/// backstop stays armed for footprints the pilots under-predicted.
/// With `costs = None` this is exactly the legacy driver, bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_resilient_mem_aware(
    gpu: &mut Gpu,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &mut Recorder,
    costs: Option<&InstanceCosts>,
) -> Result<ResilientResult, EnsembleError> {
    assert!(policy.max_attempts >= 1, "max_attempts must be at least 1");
    let n = opts.num_instances.max(1);
    ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
    let mut current_batch = if batch == 0 { n } else { batch.min(n) };
    if costs.is_some() {
        gpu.mem.set_free_lists(true);
    }
    let capacity = gpu.mem.capacity();
    // Cap a chunk drawn from `queue[from..]` by device capacity: the
    // longest prefix whose summed pilot peaks fit. Without a cost model
    // the cap is the concurrency bound alone (legacy behavior).
    let chunk_len = move |queue: &[u32], from: usize, bound: u32| -> usize {
        let want = (bound as usize).min(queue.len() - from);
        let Some(costs) = costs else { return want };
        let peaks: Vec<u64> = queue[from..from + want]
            .iter()
            .map(|&g| costs.peak_mem_bytes(g))
            .collect();
        mem_cap_take(&peaks, capacity, want)
    };

    let mut slot_outcome: Vec<Option<InstanceOutcome>> = vec![None; n as usize];
    let mut slot_stdout: Vec<String> = vec![String::new(); n as usize];
    let mut slot_end: Vec<f64> = vec![0.0; n as usize];
    let mut slot_metrics: Vec<Option<InstanceMetrics>> = vec![None; n as usize];
    let mut failed_once = vec![false; n as usize];
    let mut was_retried = vec![false; n as usize];

    let mut stats = RecoveryStats::default();
    let mut kernel_time_s = 0.0f64;
    let mut total_time_s = 0.0f64;
    let mut rpc_stats = RpcStats::default();
    let mut timeline = LaunchTimeline::default();
    let mut graph = SpanGraph::default();
    let mut heap = HeapUsage::default();
    let mut last_report = None;
    let base_us = obs.base_us();

    let mut pending: Vec<u32> = (0..n).collect();
    let mut attempt = 0u32;
    let mut aborted = false;
    // Driver-level monitor events (retries, recoveries, OOM splits,
    // backoff) layer on top of the per-launch events the inner engine
    // already streams through the same sink. Pure observation.
    let monitor = obs.monitor().cloned();

    while !pending.is_empty() && !aborted {
        stats.attempts = attempt + 1;
        if attempt > 0 {
            // Exponential backoff in simulated time before the round,
            // clamped so huge attempt counts cannot overflow to inf.
            // Under the opt-in jitter each pending instance runs its own
            // de-synchronized timer; the shared retry kernel launches
            // when the last of them fires, so the round waits for the
            // max. Jitter factors are < 1, so this never exceeds the
            // un-jittered wait.
            let wait = if policy.jitter_seed.is_some() {
                pending
                    .iter()
                    .map(|&g| policy.backoff_wait_jittered_s(attempt, g))
                    .fold(0.0, f64::max)
            } else {
                policy.backoff_wait_s(attempt)
            };
            total_time_s += wait;
            stats.backoff_s += wait;
            if let Some(m) = &monitor {
                m.backoff_wait(wait);
            }
            graph.push_backoff(attempt, wait);
            obs.set_base_us(base_us);
            obs.instant_args(
                PID_HOST,
                0,
                &format!("retry round {attempt}"),
                "recovery",
                total_time_s * 1e6,
                vec![
                    ("instances".into(), Value::U64(pending.len() as u64)),
                    ("backoff_s".into(), Value::F64(wait)),
                ],
            );
        }

        let mut next_pending: Vec<u32> = Vec::new();
        let mut round_oom = false;
        let mut qi = 0usize;
        while qi < pending.len() && !aborted {
            let take = chunk_len(&pending, qi, current_batch);
            let chunk: Vec<u32> = pending[qi..qi + take].to_vec();
            qi += chunk.len();
            let count = chunk.len() as u32;
            let chunk_lines: Vec<Vec<String>> = chunk
                .iter()
                .map(|&g| arg_lines[g as usize % arg_lines.len()].clone())
                .collect();
            let chunk_opts = EnsembleOptions {
                num_instances: count,
                ..opts.clone()
            };
            let team_fault = |team: u32| plan.fault_for(chunk[team as usize], attempt, count);
            let faults = LaunchFaults {
                team_fault: if plan.is_empty() {
                    None
                } else {
                    Some(&team_fault)
                },
                rpc_fault: plan.rpc_hook(attempt, &chunk),
                cycle_budget: policy.instance_cycle_budget,
            };
            // Chunks land back to back on one timeline, exactly like the
            // batched path.
            obs.set_base_us(base_us + total_time_s * 1e6);
            let res = run_ensemble_injected(
                gpu,
                app,
                &chunk_lines,
                &chunk_opts,
                HostServices::default(),
                obs,
                faults,
            )?;

            // Accumulate in the batched path's exact order: end times are
            // offset by the kernel time accumulated *before* this chunk.
            for (li, &g) in chunk.iter().enumerate() {
                slot_end[g as usize] = kernel_time_s + res.instance_end_times_s[li];
            }
            for (li, mut m) in res.metrics.into_iter().enumerate() {
                let g = chunk[li];
                m.instance = g;
                m.end_time_s += kernel_time_s;
                m.attempt = attempt;
                slot_metrics[g as usize] = Some(m);
            }
            let mut chunk_failures = Vec::new();
            for (li, out) in res.instances.iter().enumerate() {
                let g = chunk[li];
                let failed = !out.succeeded();
                let retryable = out.error.is_some();
                if failed {
                    stats.failures += 1;
                    failed_once[g as usize] = true;
                }
                if out.oom {
                    stats.oom_failures += 1;
                    round_oom = true;
                }
                if out.timed_out {
                    stats.timeouts += 1;
                }
                if !failed && failed_once[g as usize] {
                    stats.recovered += 1;
                    if let Some(m) = &monitor {
                        m.instance_recovered(0);
                    }
                }
                slot_outcome[g as usize] = Some(out.clone());
                if retryable {
                    chunk_failures.push(g);
                    if attempt + 1 < policy.max_attempts {
                        next_pending.push(g);
                        was_retried[g as usize] = true;
                        if let Some(m) = &monitor {
                            m.retry_scheduled(0);
                        }
                    } else if policy.fail_fast {
                        aborted = true;
                    }
                }
            }
            for (li, s) in res.stdout.into_iter().enumerate() {
                slot_stdout[chunk[li] as usize] = s;
            }
            // The chunk's utilization series lands after the elapsed
            // chunks and backoff waits, in lockstep with the recorder
            // base shift above.
            let mut chunk_tl = res.timeline;
            chunk_tl.shift_us(total_time_s * 1e6);
            timeline.merge(chunk_tl);
            // Span graph: stamp the retry round, shift onto the launch
            // timeline, and renumber chunk-local instances to the global
            // ids — the same re-stamping the metrics got above.
            let mut chunk_graph = res.graph;
            chunk_graph.stamp_round(attempt);
            chunk_graph.shift_start_s(total_time_s);
            chunk_graph.remap_instances(&chunk);
            graph.merge(chunk_graph);
            kernel_time_s += res.kernel_time_s;
            total_time_s += res.total_time_s;
            rpc_stats.merge(&res.rpc_stats);
            heap.absorb(&res.heap);
            last_report = Some(res.report);

            // Recovery markers only when something actually failed, so a
            // clean run's trace stays bit-identical to the batched path.
            if !chunk_failures.is_empty() && obs.is_enabled() {
                obs.set_base_us(base_us);
                for &g in &chunk_failures {
                    obs.instant_args(
                        PID_HOST,
                        0,
                        &format!("instance {g} failed"),
                        "recovery",
                        total_time_s * 1e6,
                        vec![("attempt".into(), Value::U64(attempt as u64))],
                    );
                }
            }
        }

        if aborted {
            // fail-fast: everything not yet final is abandoned.
            for &g in next_pending.iter().chain(&pending[qi..]) {
                slot_outcome[g as usize] = Some(InstanceOutcome {
                    exit_code: None,
                    error: Some("skipped: fail-fast".into()),
                    oom: false,
                    timed_out: false,
                });
                slot_end[g as usize] = kernel_time_s;
                if slot_metrics[g as usize].is_none() {
                    slot_metrics[g as usize] = Some(skipped_metrics(g, kernel_time_s));
                }
                stats.skipped += 1;
            }
            next_pending.clear();
        }
        if round_oom && policy.oom_split && current_batch > 1 {
            // Graceful degradation: the memory wall halves concurrency
            // instead of ending the run.
            current_batch = (current_batch / 2).max(1);
            stats.oom_splits += 1;
            if let Some(m) = &monitor {
                m.oom_split(current_batch);
            }
            obs.set_base_us(base_us);
            obs.instant_args(
                PID_HOST,
                0,
                &format!("batch split to {current_batch}"),
                "recovery",
                total_time_s * 1e6,
                vec![("batch".into(), Value::U64(current_batch as u64))],
            );
        }
        pending = next_pending;
        attempt += 1;
    }
    obs.set_base_us(base_us);

    stats.retried = was_retried.iter().filter(|&&r| r).count() as u32;
    stats.final_batch = current_batch;
    let instances: Vec<InstanceOutcome> = slot_outcome
        .into_iter()
        .map(|o| o.expect("every instance has a final outcome"))
        .collect();
    stats.unrecovered = instances.iter().filter(|i| !i.succeeded()).count() as u32;
    let metrics = slot_metrics
        .into_iter()
        .map(|m| m.expect("every instance has metrics"))
        .collect();

    Ok(ResilientResult {
        ensemble: EnsembleResult {
            instances,
            stdout: slot_stdout,
            report: last_report.expect("at least one chunk ran"),
            kernel_time_s,
            total_time_s,
            instance_end_times_s: slot_end,
            rpc_stats,
            metrics,
            timeline,
            graph,
            heap,
        },
        recovery: stats,
        kernel: format!("{}-x{}", app.name, n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_below_the_clamp() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_wait_s(1), 1e-3);
        assert_eq!(p.backoff_wait_s(2), 2e-3);
        assert_eq!(p.backoff_wait_s(3), 4e-3);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RecoveryPolicy {
            max_attempts: u32::MAX,
            ..RecoveryPolicy::default()
        };
        // factor^(attempt-1) overflows f64 far before u32::MAX rounds;
        // the wait must clamp to the ceiling, never inf or NaN.
        for attempt in [64, 1100, 100_000, u32::MAX] {
            let w = p.backoff_wait_s(attempt);
            assert!(w.is_finite(), "attempt {attempt}: {w}");
            assert_eq!(w, p.backoff_max_s, "attempt {attempt}");
        }
        // A cumulative sum over many rounds stays finite too.
        let total: f64 = (1..10_000).map(|a| p.backoff_wait_s(a)).sum();
        assert!(total.is_finite());
    }

    #[test]
    fn jitter_off_is_the_plain_wait() {
        let p = RecoveryPolicy::default();
        for attempt in 1..6 {
            for instance in [0, 3, 77] {
                assert_eq!(
                    p.backoff_wait_jittered_s(attempt, instance),
                    p.backoff_wait_s(attempt)
                );
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        let p = RecoveryPolicy {
            jitter_seed: Some(42),
            ..RecoveryPolicy::default()
        };
        let q = RecoveryPolicy {
            jitter_seed: Some(42),
            ..RecoveryPolicy::default()
        };
        let mut waits = Vec::new();
        for instance in 0..32 {
            let w = p.backoff_wait_jittered_s(2, instance);
            // Same seed replays the same wait.
            assert_eq!(w, q.backoff_wait_jittered_s(2, instance));
            // Scaled into [base/2, base).
            let base = p.backoff_wait_s(2);
            assert!(w >= base * 0.5 && w < base, "instance {instance}: {w}");
            waits.push(w.to_bits());
        }
        // The whole point: instances do not retry in lockstep.
        waits.sort_unstable();
        waits.dedup();
        assert!(waits.len() > 16, "only {} distinct waits", waits.len());
        // A different seed draws a different schedule.
        let r = RecoveryPolicy {
            jitter_seed: Some(43),
            ..RecoveryPolicy::default()
        };
        assert_ne!(
            p.backoff_wait_jittered_s(2, 5),
            r.backoff_wait_jittered_s(2, 5)
        );
    }

    #[test]
    fn backoff_clamp_is_configurable() {
        let p = RecoveryPolicy {
            backoff_max_s: 3e-3,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff_wait_s(1), 1e-3);
        assert_eq!(p.backoff_wait_s(2), 2e-3);
        assert_eq!(p.backoff_wait_s(3), 3e-3);
        assert_eq!(p.backoff_wait_s(30), 3e-3);
    }
}
