//! Fault injection and recovery for ensemble execution.
//!
//! The paper's ensemble loader packs `NI` application instances into one
//! kernel — which also packs `NI` failure domains into one launch: a trap,
//! a device OOM or a hung team takes the whole ensemble's result quality
//! with it. This crate makes those failures **first-class, deterministic
//! and recoverable**:
//!
//! * [`FaultPlan`] — a seeded, JSON-serializable description of what to
//!   break: per-team traps, forced device OOM above a concurrency
//!   threshold (the §4.3 Page-Rank memory wall, reproducible on demand),
//!   hung instances, failed or corrupted RPC round trips. The same plan
//!   against the same workload replays bit-for-bit; an *empty* plan is
//!   pure bookkeeping and perturbs nothing.
//! * [`run_ensemble_resilient`] — the recovery driver around the batched
//!   ensemble path: failed instances re-launch in follow-up kernels with
//!   exponential backoff in simulated time, device OOM halves the
//!   concurrent batch ([`RecoveryPolicy::oom_split`]) so the memory wall
//!   degrades throughput instead of ending the run, and a watchdog cycle
//!   budget reaps hung instances without killing their launch.
//! * [`RecoveryStats`] / [`ResilientResult::launch_metrics`] — the
//!   recovery story (attempts, retries, recoveries, splits, backoff)
//!   rolled into the schema-v3 metrics record and the Chrome trace.

mod plan;
mod resilient;
mod sharded;

pub use plan::{DeviceDeath, FaultKind, FaultPlan, FaultSpec};
pub use resilient::{
    run_ensemble_resilient, run_ensemble_resilient_mem_aware, RecoveryPolicy, RecoveryStats,
    ResilientResult,
};
pub use sharded::{
    run_ensemble_sharded_resilient, run_ensemble_sharded_resilient_mem_aware,
    ShardedResilientResult,
};
