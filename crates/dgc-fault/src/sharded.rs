//! The sharded resilient driver: per-instance recovery across a fleet.
//!
//! Combines `dgc-sched`'s multi-device sharding with this crate's
//! recovery loop, and adds the failure mode only a fleet can have: a
//! **whole device dying** ([`crate::DeviceDeath`]). Each recovery round
//! places the pending instances over the devices still alive; instances
//! on a device that dies mid-round fail with a `device <d> died` trap and
//! re-shard onto the survivors next round — a device death never consumes
//! the instance's own retry budget, because the instance never ran.
//!
//! With one device and no device deaths the driver delegates to
//! [`run_ensemble_resilient`], so `--devices 1` keeps its exact
//! single-device recovery semantics.

use crate::plan::FaultPlan;
use crate::resilient::{run_ensemble_resilient_mem_aware, RecoveryPolicy, RecoveryStats};
use dgc_core::{
    ensure_arg_capacity, run_ensemble_injected, EnsembleError, EnsembleOptions, EnsembleResult,
    HeapUsage, HostApp, InstanceOutcome, LaunchFaults,
};
use dgc_obs::{
    DeviceStamped, InstanceMetrics, LaunchMetrics, LaunchTimeline, Recorder, SpanGraph,
    DEVICE_PID_STRIDE, PID_HOST,
};
use dgc_sched::{mem_cap_take, InstanceCosts, Placement};
use gpu_sim::{DeviceFleet, SimReport};
use host_rpc::{HostServices, RpcStats};
use serde::Value;

/// Result of a sharded resilient run: the merged ensemble result, the
/// recovery story, and the fleet's fate.
#[derive(Debug)]
pub struct ShardedResilientResult {
    /// Final outcome per instance, in global instance order.
    /// `total_time_s` is the sum over rounds of each round's makespan
    /// plus backoff — the wall time a multi-device recovery actually
    /// takes.
    pub ensemble: EnsembleResult,
    pub recovery: RecoveryStats,
    pub devices: u32,
    pub placement: Placement,
    /// Devices that died during the run, in death order.
    pub dead_devices: Vec<u32>,
    /// Cumulative busy time per device across all rounds, seconds.
    pub per_device_time_s: Vec<f64>,
    kernel: String,
}

impl ShardedResilientResult {
    pub fn all_succeeded(&self) -> bool {
        self.ensemble.all_succeeded()
    }

    /// Launch rollup with both the recovery and the multi-device
    /// (schema-v4) fields filled in.
    pub fn launch_metrics(&self) -> LaunchMetrics {
        let mut lm = self.ensemble.launch_metrics();
        lm.kernel = self.kernel.clone();
        lm.devices = self.devices;
        lm.makespan_s = self.ensemble.total_time_s;
        lm.failed = self.recovery.failures;
        lm.oom = self.recovery.oom_failures;
        lm.attempts = self.recovery.attempts;
        lm.retried = self.recovery.retried;
        lm.recovered = self.recovery.recovered;
        lm.unrecovered = self.recovery.unrecovered;
        lm.oom_splits = self.recovery.oom_splits;
        lm.final_batch = self.recovery.final_batch;
        lm.backoff_s = self.recovery.backoff_s;
        lm
    }
}

/// Run an ensemble under fault injection across a fleet, with
/// per-instance recovery and device-death re-sharding.
///
/// Per round, pending instances are placed over the live devices by
/// `placement` (re-consulting the pilot cost model for `greedy`/`lpt`),
/// each device runs its shard in chunks of the current batch, and the
/// round costs its **makespan** — the slowest device — plus any backoff.
/// Device deaths from the plan remove the device: its instances for the
/// round fail and re-queue without spending a retry attempt. If every
/// device is dead while instances remain, the survivors-less remainder
/// is marked unrecovered.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_sharded_resilient(
    fleet: &mut DeviceFleet,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    placement: Placement,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &mut Recorder,
) -> Result<ShardedResilientResult, EnsembleError> {
    run_ensemble_sharded_resilient_mem_aware(
        fleet, app, arg_lines, opts, batch, placement, plan, policy, obs, false,
    )
}

/// [`run_ensemble_sharded_resilient`] with opt-in **memory-aware
/// packing**: free-list heaps on every device, pilot peaks capping both
/// placement ([`dgc_sched::Placement::assign_mem_aware`]) and per-device
/// chunk sizes ([`mem_cap_take`]), with the OOM-halving backstop still
/// armed. With `mem_aware` off this is exactly the legacy driver.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_sharded_resilient_mem_aware(
    fleet: &mut DeviceFleet,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    placement: Placement,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &mut Recorder,
    mem_aware: bool,
) -> Result<ShardedResilientResult, EnsembleError> {
    assert!(!fleet.is_empty(), "sharding needs at least one device");
    assert!(policy.max_attempts >= 1, "max_attempts must be at least 1");
    let m = fleet.len();
    let n = opts.num_instances.max(1);
    let no_deaths = plan.device_deaths.as_deref().unwrap_or_default().is_empty();
    if mem_aware {
        for d in 0..m {
            fleet.gpu_mut(d).mem.set_free_lists(true);
        }
    }

    if m == 1 && no_deaths {
        // Single healthy device: exact single-device recovery semantics
        // (memory-aware mode hands its pilot costs down).
        let costs = if mem_aware {
            ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
            let lines_of: Vec<Vec<String>> = (0..n)
                .map(|i| arg_lines[i as usize % arg_lines.len()].clone())
                .collect();
            Some(InstanceCosts::estimate(
                app,
                &lines_of,
                opts,
                fleet.spec(0),
            )?)
        } else {
            None
        };
        let res = run_ensemble_resilient_mem_aware(
            fleet.gpu_mut(0),
            app,
            arg_lines,
            opts,
            batch,
            plan,
            policy,
            obs,
            costs.as_ref(),
        )?;
        let total = res.ensemble.total_time_s;
        return Ok(ShardedResilientResult {
            ensemble: res.ensemble,
            recovery: res.recovery,
            devices: 1,
            placement,
            dead_devices: Vec::new(),
            per_device_time_s: vec![total],
            kernel: format!("{}-x{}", app.name, n),
        });
    }

    ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
    let lines_of: Vec<Vec<String>> = (0..n)
        .map(|i| arg_lines[i as usize % arg_lines.len()].clone())
        .collect();
    // Pilot costs once, on device 0's spec; re-used every round.
    // Memory-aware mode always needs them for the peak footprints.
    let costs = if placement.needs_costs() || mem_aware {
        Some(InstanceCosts::estimate(
            app,
            &lines_of,
            opts,
            fleet.spec(0),
        )?)
    } else {
        None
    };
    let caps_all: Vec<u64> = (0..m).map(|d| fleet.spec(d).global_mem_bytes).collect();

    let mut current_batch = if batch == 0 { n } else { batch.min(n) };
    let mut slot_outcome: Vec<Option<InstanceOutcome>> = vec![None; n as usize];
    let mut slot_stdout: Vec<String> = vec![String::new(); n as usize];
    let mut slot_end: Vec<f64> = vec![0.0; n as usize];
    let mut slot_metrics: Vec<Option<InstanceMetrics>> = vec![None; n as usize];
    let mut failed_once = vec![false; n as usize];
    let mut was_retried = vec![false; n as usize];

    let mut stats = RecoveryStats::default();
    let mut kernel_time_s = 0.0f64;
    let mut total_time_s = 0.0f64;
    let mut per_device_time_s = vec![0.0f64; m];
    let mut dead_devices: Vec<u32> = Vec::new();
    let mut rpc_stats = RpcStats::default();
    let mut timeline = LaunchTimeline::default();
    let mut graph = SpanGraph::default();
    let mut heap = HeapUsage {
        peak_bytes: vec![0; m],
        ..Default::default()
    };
    let mut last_report = None;
    let base_us = obs.base_us();
    let traced = obs.is_enabled();
    // Driver-level monitor events. Per-device launch events flow through
    // the per-device recorders below, re-stamped with the device ordinal
    // by [`DeviceStamped`]. Pure observation.
    let monitor = obs.monitor().cloned();

    let mut pending: Vec<u32> = (0..n).collect();
    let mut attempt = 0u32;

    while !pending.is_empty() {
        stats.attempts = attempt + 1;
        if attempt > 0 {
            let wait = policy.backoff_wait_s(attempt);
            total_time_s += wait;
            stats.backoff_s += wait;
            if let Some(m) = &monitor {
                m.backoff_wait(wait);
            }
            graph.push_backoff(attempt, wait);
            obs.set_base_us(base_us);
            obs.instant_args(
                PID_HOST,
                0,
                &format!("retry round {attempt}"),
                "recovery",
                total_time_s * 1e6,
                vec![
                    ("instances".into(), Value::U64(pending.len() as u64)),
                    ("backoff_s".into(), Value::F64(wait)),
                ],
            );
        }

        // Devices that died in an earlier round are out of the draw;
        // ones that die *this* round still get placed — the death is
        // discovered mid-round, exactly like real hardware.
        let live: Vec<usize> = (0..m)
            .filter(|&d| !plan.device_dead_before(d as u32, attempt))
            .collect();
        if live.is_empty() {
            for &g in &pending {
                slot_outcome[g as usize] = Some(InstanceOutcome {
                    exit_code: None,
                    error: Some("no live devices left in the fleet".into()),
                    oom: false,
                    timed_out: false,
                });
                slot_end[g as usize] = total_time_s;
                if slot_metrics[g as usize].is_none() {
                    slot_metrics[g as usize] =
                        Some(crate::resilient::skipped_metrics(g, total_time_s));
                }
            }
            pending.clear();
            break;
        }

        // Memory caps only bind in memory-aware mode; an empty slice
        // keeps the legacy assignment bit-identical.
        let caps_live: Vec<u64> = if mem_aware {
            live.iter().map(|&d| caps_all[d]).collect()
        } else {
            Vec::new()
        };
        let assignment = {
            let pend = &pending;
            match &costs {
                Some(c) => placement.assign_mem_aware(
                    pend.len() as u32,
                    live.len(),
                    |j, k| c.cost_on(pend[j as usize], fleet.spec(live[k])),
                    |j| c.peak_mem_bytes(pend[j as usize]),
                    &caps_live,
                ),
                None => placement.assign(pend.len() as u32, live.len(), |_, _| 0.0),
            }
        };

        let mut next_pending: Vec<u32> = Vec::new();
        let mut round_oom = false;
        let mut round_makespan = 0.0f64;

        for (k, shard_idx) in assignment.iter().enumerate() {
            let d = live[k];
            let shard: Vec<u32> = shard_idx.iter().map(|&j| pending[j as usize]).collect();

            if plan.device_dies_at(d as u32, attempt) {
                // The whole device is gone mid-round: every placed
                // instance fails without running and re-queues. No retry
                // budget is spent — the instance never launched.
                if !dead_devices.contains(&(d as u32)) {
                    dead_devices.push(d as u32);
                }
                if let Some(m) = &monitor {
                    m.device_dead(d as u32);
                }
                obs.set_base_us(base_us);
                obs.instant_args(
                    PID_HOST,
                    0,
                    &format!("device {d} died"),
                    "recovery",
                    total_time_s * 1e6,
                    vec![("instances".into(), Value::U64(shard.len() as u64))],
                );
                for &g in &shard {
                    stats.failures += 1;
                    failed_once[g as usize] = true;
                    was_retried[g as usize] = true;
                    slot_outcome[g as usize] = Some(InstanceOutcome {
                        exit_code: None,
                        error: Some(format!("device {d} died")),
                        oom: false,
                        timed_out: false,
                    });
                    slot_end[g as usize] = total_time_s;
                    if slot_metrics[g as usize].is_none() {
                        slot_metrics[g as usize] =
                            Some(crate::resilient::skipped_metrics(g, total_time_s));
                    }
                    if let Some(m) = &monitor {
                        m.retry_scheduled(d as u32);
                    }
                    next_pending.push(g);
                }
                continue;
            }
            if shard.is_empty() {
                continue;
            }

            // Run this device's shard in chunks of the current batch.
            let mut rec = if traced {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            };
            if let Some(m) = &monitor {
                rec.set_monitor(DeviceStamped::stamp(m.clone(), d as u32));
            }
            let mut device_elapsed = 0.0f64;
            let mut device_kernel = 0.0f64;
            let mut qi = 0usize;
            while qi < shard.len() {
                let take = {
                    let want = (current_batch as usize).min(shard.len() - qi);
                    match (&costs, mem_aware) {
                        (Some(c), true) => {
                            let peaks: Vec<u64> = shard[qi..qi + want]
                                .iter()
                                .map(|&g| c.peak_mem_bytes(g))
                                .collect();
                            mem_cap_take(&peaks, caps_all[d], want)
                        }
                        _ => want,
                    }
                };
                let chunk: Vec<u32> = shard[qi..qi + take].to_vec();
                qi += chunk.len();
                let count = chunk.len() as u32;
                let chunk_lines: Vec<Vec<String>> = chunk
                    .iter()
                    .map(|&g| lines_of[g as usize].clone())
                    .collect();
                let chunk_opts = EnsembleOptions {
                    num_instances: count,
                    ..opts.clone()
                };
                let team_fault = |team: u32| plan.fault_for(chunk[team as usize], attempt, count);
                let faults = LaunchFaults {
                    team_fault: if plan.is_empty() {
                        None
                    } else {
                        Some(&team_fault)
                    },
                    rpc_fault: plan.rpc_hook(attempt, &chunk),
                    cycle_budget: policy.instance_cycle_budget,
                };
                rec.set_base_us(base_us + (total_time_s + device_elapsed) * 1e6);
                let res = run_ensemble_injected(
                    fleet.gpu_mut(d),
                    app,
                    &chunk_lines,
                    &chunk_opts,
                    HostServices::default(),
                    &mut rec,
                    faults,
                )?;

                for (li, &g) in chunk.iter().enumerate() {
                    slot_end[g as usize] =
                        total_time_s + device_elapsed + res.instance_end_times_s[li];
                }
                for (li, mut mi) in res.metrics.into_iter().enumerate() {
                    let g = chunk[li];
                    mi.instance = g;
                    mi.end_time_s += total_time_s + device_elapsed;
                    mi.attempt = attempt;
                    mi.device = d as u32;
                    slot_metrics[g as usize] = Some(mi);
                }
                for (li, out) in res.instances.iter().enumerate() {
                    let g = chunk[li];
                    let failed = !out.succeeded();
                    let retryable = out.error.is_some();
                    if failed {
                        stats.failures += 1;
                        failed_once[g as usize] = true;
                    }
                    if out.oom {
                        stats.oom_failures += 1;
                        round_oom = true;
                    }
                    if out.timed_out {
                        stats.timeouts += 1;
                    }
                    if !failed && failed_once[g as usize] {
                        stats.recovered += 1;
                        if let Some(m) = &monitor {
                            m.instance_recovered(d as u32);
                        }
                    }
                    slot_outcome[g as usize] = Some(out.clone());
                    if retryable && attempt + 1 < policy.max_attempts {
                        next_pending.push(g);
                        was_retried[g as usize] = true;
                        if let Some(m) = &monitor {
                            m.retry_scheduled(d as u32);
                        }
                    }
                }
                for (li, s) in res.stdout.into_iter().enumerate() {
                    slot_stdout[chunk[li] as usize] = s;
                }
                // The chunk's series lands after the elapsed rounds plus
                // this device's earlier chunks, stamped with the device —
                // the same frame as the recorder base shift above.
                let mut chunk_tl = res.timeline;
                chunk_tl.shift_us((total_time_s + device_elapsed) * 1e6);
                chunk_tl.set_device(d as u32);
                timeline.merge(chunk_tl);
                // Span graph: this round's launches run concurrently
                // across device lanes — the round costs its slowest lane,
                // and replay folds each lane's `total_s` from zero
                // exactly like `device_elapsed` below.
                let mut chunk_graph = res.graph;
                chunk_graph.stamp_round(attempt);
                chunk_graph.stamp_device(d as u32, true);
                chunk_graph.shift_start_s(total_time_s + device_elapsed);
                chunk_graph.remap_instances(&chunk);
                graph.merge(chunk_graph);
                device_elapsed += res.total_time_s;
                device_kernel += res.kernel_time_s;
                rpc_stats.merge(&res.rpc_stats);
                let chunk_peak = res.heap.peak_bytes.iter().copied().max().unwrap_or(0);
                heap.peak_bytes[d] = heap.peak_bytes[d].max(chunk_peak);
                heap.fragmentation = heap.fragmentation.max(res.heap.fragmentation);
                heap.alloc_fallbacks += res.heap.alloc_fallbacks;
                last_report = Some(res.report);
            }
            per_device_time_s[d] += device_elapsed;
            kernel_time_s += device_kernel;
            round_makespan = round_makespan.max(device_elapsed);
            if traced {
                obs.merge_shifted(&rec, d as u32 * DEVICE_PID_STRIDE, &format!("dev{d} "));
            }
        }

        total_time_s += round_makespan;
        if round_oom && policy.oom_split && current_batch > 1 {
            current_batch = (current_batch / 2).max(1);
            stats.oom_splits += 1;
            if let Some(m) = &monitor {
                m.oom_split(current_batch);
            }
            obs.set_base_us(base_us);
            obs.instant_args(
                PID_HOST,
                0,
                &format!("batch split to {current_batch}"),
                "recovery",
                total_time_s * 1e6,
                vec![("batch".into(), Value::U64(current_batch as u64))],
            );
        }
        next_pending.sort_unstable();
        next_pending.dedup();
        pending = next_pending;
        attempt += 1;
    }
    obs.set_base_us(base_us);

    stats.retried = was_retried.iter().filter(|&&r| r).count() as u32;
    stats.final_batch = current_batch;
    let instances: Vec<InstanceOutcome> = slot_outcome
        .into_iter()
        .map(|o| o.expect("every instance has a final outcome"))
        .collect();
    stats.unrecovered = instances.iter().filter(|i| !i.succeeded()).count() as u32;
    let metrics = slot_metrics
        .into_iter()
        .map(|mi| mi.expect("every instance has metrics"))
        .collect();

    // If every device died before anything launched, no report exists;
    // an all-zero one keeps the result well-formed (every instance is
    // already marked unrecovered).
    let report = last_report.unwrap_or_else(|| SimReport {
        kernel_name: format!("{}-x{}", app.name, n),
        kernel_cycles: 0.0,
        sim_time_s: 0.0,
        blocks: 0,
        threads_per_block: 0,
        waves: 0,
        occupancy: 0.0,
        total_insts: 0.0,
        total_sectors: 0,
        useful_bytes: 0.0,
        moved_bytes: 0.0,
        coalescing_efficiency: 0.0,
        l2_hit: 0.0,
        dram_efficiency: 0.0,
        active_region_tags: 0,
        issue_utilization: 0.0,
        dram_utilization: 0.0,
        rpc_calls: 0,
        block_end_cycles: Vec::new(),
    });

    Ok(ShardedResilientResult {
        ensemble: EnsembleResult {
            instances,
            stdout: slot_stdout,
            report,
            kernel_time_s,
            total_time_s,
            instance_end_times_s: slot_end,
            rpc_stats,
            metrics,
            timeline,
            graph,
            heap,
        },
        recovery: stats,
        devices: m as u32,
        placement,
        dead_devices,
        per_device_time_s,
        kernel: format!("{}-x{}", app.name, n),
    })
}
