//! Sharded resilient driver: device deaths re-shard onto survivors.

use device_libc::dl_printf;
use dgc_core::{AppContext, EnsembleOptions, HostApp};
use dgc_fault::{
    run_ensemble_resilient, run_ensemble_sharded_resilient, DeviceDeath, FaultKind, FaultPlan,
    FaultSpec, RecoveryPolicy,
};
use dgc_obs::Recorder;
use dgc_sched::Placement;
use gpu_arch::DeviceRegistry;
use gpu_sim::{DeviceFleet, Gpu, KernelError, TeamCtx};

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines() -> Vec<Vec<String>> {
    dgc_core::parse_arg_file("-n 60\n-n 120\n-n 40\n").unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        num_instances: n,
        thread_limit: 32,
        cycle_args: true,
        ..Default::default()
    }
}

fn death_plan(device: u32, at_attempt: u32) -> FaultPlan {
    FaultPlan {
        seed: 0,
        faults: vec![],
        device_deaths: Some(vec![DeviceDeath { device, at_attempt }]),
    }
}

/// The acceptance criterion: kill one device mid-ensemble and everything
/// still completes — `unrecovered == 0`.
#[test]
fn dead_device_reshards_onto_survivors() {
    let reg = DeviceRegistry::parse("a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded_resilient(
        &mut fleet,
        &app(),
        &lines(),
        &opts(8),
        0,
        Placement::RoundRobin,
        &death_plan(1, 0),
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();

    assert!(res.all_succeeded(), "{:?}", res.ensemble.instances);
    assert_eq!(res.recovery.unrecovered, 0);
    assert_eq!(res.dead_devices, vec![1]);
    // Round-robin put the 4 odd instances on device 1; they all died,
    // re-sharded, and recovered.
    assert_eq!(res.recovery.retried, 4);
    assert_eq!(res.recovery.recovered, 4);
    assert_eq!(res.recovery.failures, 4);
    assert_eq!(res.recovery.attempts, 2);
    // Every instance ultimately ran on the surviving device 0.
    assert!(res.ensemble.metrics.iter().all(|m| m.device == 0));
    // The dead device charged no busy time after it died at round 0.
    assert_eq!(res.per_device_time_s[1], 0.0);
    assert!(res.per_device_time_s[0] > 0.0);
    let lm = res.launch_metrics();
    assert_eq!(lm.devices, 2);
    assert_eq!(lm.unrecovered, 0);
    assert_eq!(lm.makespan_s, res.ensemble.total_time_s);
}

#[test]
fn death_in_a_later_round_only_reshards_the_still_pending() {
    // Instance 2 traps on attempts 0 and 1 (recovers on 2); device 1
    // dies at attempt 1. Everything still completes.
    let mut plan = death_plan(1, 1);
    for a in [0, 1] {
        plan.faults.push(FaultSpec {
            instance: Some(2),
            attempt: Some(a),
            kind: FaultKind::Trap {
                message: "flaky".into(),
            },
        });
    }
    let reg = DeviceRegistry::parse("a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded_resilient(
        &mut fleet,
        &app(),
        &lines(),
        &opts(6),
        0,
        Placement::RoundRobin,
        &plan,
        &RecoveryPolicy {
            max_attempts: 4,
            ..RecoveryPolicy::default()
        },
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(res.all_succeeded(), "{:?}", res.ensemble.instances);
    assert_eq!(res.recovery.unrecovered, 0);
    assert_eq!(res.dead_devices, vec![1]);
}

#[test]
fn all_devices_dead_marks_the_rest_unrecovered() {
    let plan = FaultPlan {
        seed: 0,
        faults: vec![FaultSpec {
            instance: None,
            attempt: Some(0),
            kind: FaultKind::Trap {
                message: "all fail round 0".into(),
            },
        }],
        device_deaths: Some(vec![
            DeviceDeath {
                device: 0,
                at_attempt: 0,
            },
            DeviceDeath {
                device: 1,
                at_attempt: 0,
            },
        ]),
    };
    let reg = DeviceRegistry::parse("a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded_resilient(
        &mut fleet,
        &app(),
        &lines(),
        &opts(4),
        0,
        Placement::RoundRobin,
        &plan,
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert_eq!(res.recovery.unrecovered, 4);
    assert!(res
        .ensemble
        .instances
        .iter()
        .all(|o| o.error.as_deref() == Some("no live devices left in the fleet")));
}

/// With one healthy device the sharded driver IS the single-device
/// resilient driver — same results, same recovery story.
#[test]
fn single_device_delegates_to_resilient() {
    let plan = FaultPlan {
        seed: 0,
        faults: vec![FaultSpec {
            instance: Some(1),
            attempt: Some(0),
            kind: FaultKind::Trap {
                message: "once".into(),
            },
        }],
        device_deaths: None,
    };
    let mut gpu = Gpu::a100();
    let base = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines(),
        &opts(5),
        2,
        &plan,
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();

    let reg = DeviceRegistry::parse("a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let sharded = run_ensemble_sharded_resilient(
        &mut fleet,
        &app(),
        &lines(),
        &opts(5),
        2,
        Placement::Lpt,
        &plan,
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();

    assert_eq!(sharded.devices, 1);
    assert_eq!(sharded.ensemble.instances, base.ensemble.instances);
    assert_eq!(sharded.ensemble.stdout, base.ensemble.stdout);
    assert_eq!(sharded.ensemble.total_time_s, base.ensemble.total_time_s);
    assert_eq!(sharded.ensemble.metrics, base.ensemble.metrics);
    assert_eq!(sharded.recovery, base.recovery);
}

/// Device death composes with cost-model placement: LPT on a
/// heterogeneous fleet still finishes everything after the fast device
/// dies.
#[test]
fn lpt_survives_losing_the_fast_device() {
    let reg = DeviceRegistry::parse("a100,a100*0.5").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded_resilient(
        &mut fleet,
        &app(),
        &lines(),
        &opts(6),
        0,
        Placement::Lpt,
        &death_plan(0, 0),
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(res.all_succeeded(), "{:?}", res.ensemble.instances);
    assert_eq!(res.recovery.unrecovered, 0);
    assert_eq!(res.dead_devices, vec![0]);
    assert!(res.ensemble.metrics.iter().all(|m| m.device == 1));
}
