//! Property tests for the resilient driver: empty-plan bit-identity with
//! the batched path, and seed-for-seed determinism of recovery.

use device_libc::dl_printf;
use dgc_core::{run_ensemble_batched, AppContext, EnsembleOptions, HostApp};
use dgc_fault::{run_ensemble_resilient, FaultPlan, RecoveryPolicy};
use dgc_obs::Recorder;
use gpu_sim::{Gpu, KernelError, TeamCtx};
use proptest::prelude::*;

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines() -> Vec<Vec<String>> {
    dgc_core::parse_arg_file("-n 60\n-n 120\n-n 40\n").unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit: 32,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With an empty fault plan the resilient driver is pure bookkeeping:
    /// every result field — times, end times, stalls, metrics — is
    /// bit-identical to `run_ensemble_batched`, for any instance count
    /// and batch size (including the unbatched `n <= batch` shortcut).
    #[test]
    fn empty_plan_is_bit_identical_to_batched(n in 1u32..7, batch in 1u32..5) {
        let arg_lines = lines();
        let mut gpu = Gpu::a100();
        let baseline =
            run_ensemble_batched(&mut gpu, &app(), &arg_lines, &opts(n), batch).unwrap();
        let mut gpu = Gpu::a100();
        let r = run_ensemble_resilient(
            &mut gpu,
            &app(),
            &arg_lines,
            &opts(n),
            batch,
            &FaultPlan::default(),
            &RecoveryPolicy::default(),
            &mut Recorder::disabled(),
        )
        .unwrap();
        prop_assert_eq!(&r.ensemble.instances, &baseline.instances);
        prop_assert_eq!(&r.ensemble.stdout, &baseline.stdout);
        prop_assert_eq!(&r.ensemble.report, &baseline.report);
        prop_assert_eq!(r.ensemble.kernel_time_s, baseline.kernel_time_s);
        prop_assert_eq!(r.ensemble.total_time_s, baseline.total_time_s);
        prop_assert_eq!(
            &r.ensemble.instance_end_times_s,
            &baseline.instance_end_times_s
        );
        prop_assert_eq!(&r.ensemble.metrics, &baseline.metrics);
        prop_assert_eq!(r.ensemble.rpc_stats, baseline.rpc_stats);
        prop_assert_eq!(r.recovery.attempts, 1);
        prop_assert_eq!(r.recovery.failures, 0);
        prop_assert_eq!(r.recovery.backoff_s, 0.0);
    }

    /// Same seed, same plan ⇒ identical retry schedule, outcomes, and
    /// metrics — recovery is replayable.
    #[test]
    fn scattered_faults_recover_deterministically(seed in any::<u64>(), batch in 0u32..4) {
        let plan = FaultPlan::scatter_traps(seed, 6, 2);
        prop_assert_eq!(plan.faults.len(), 2);
        let run = || {
            let mut gpu = Gpu::a100();
            run_ensemble_resilient(
                &mut gpu,
                &app(),
                &lines(),
                &opts(6),
                batch,
                &plan,
                &RecoveryPolicy::default(),
                &mut Recorder::disabled(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.ensemble.instances, &b.ensemble.instances);
        prop_assert_eq!(&a.ensemble.metrics, &b.ensemble.metrics);
        prop_assert_eq!(a.ensemble.kernel_time_s, b.ensemble.kernel_time_s);
        prop_assert_eq!(a.ensemble.total_time_s, b.ensemble.total_time_s);
        prop_assert_eq!(&a.recovery, &b.recovery);
        // Both scattered first-attempt traps recover on the retry.
        prop_assert!(a.all_succeeded());
        prop_assert_eq!(a.recovery.recovered, 2);
        prop_assert_eq!(a.recovery.retried, 2);
    }
}
