//! End-to-end recovery scenarios: injected traps, the OOM-driven batch
//! split (the paper's §4.3 memory wall as a recoverable event), watchdog
//! timeouts, RPC corruption, and fail-fast.

use device_libc::dl_printf;
use dgc_core::{run_ensemble_batched_traced, AppContext, EnsembleOptions, HostApp};
use dgc_fault::{run_ensemble_resilient, FaultKind, FaultPlan, FaultSpec, RecoveryPolicy};
use dgc_obs::Recorder;
use gpu_sim::{Gpu, KernelError, TeamCtx};

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

/// Streams `n` doubles (from `-n <n>`), prints a digest.
fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines(text: &str) -> Vec<Vec<String>> {
    dgc_core::parse_arg_file(text).unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit: 32,
        ..Default::default()
    }
}

fn trap_on(instance: u32, attempt: Option<u32>) -> FaultPlan {
    FaultPlan {
        device_deaths: None,
        seed: 0,
        faults: vec![FaultSpec {
            instance: Some(instance),
            attempt,
            kind: FaultKind::Trap {
                message: "injected".into(),
            },
        }],
    }
}

#[test]
fn first_attempt_trap_recovers_on_retry() {
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n-n 200\n"),
        &opts(4),
        0,
        &trap_on(2, Some(0)),
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(r.all_succeeded(), "{:?}", r.ensemble.instances);
    assert_eq!(r.recovery.attempts, 2);
    assert_eq!(r.recovery.retried, 1);
    assert_eq!(r.recovery.recovered, 1);
    assert_eq!(r.recovery.failures, 1);
    assert_eq!(r.recovery.unrecovered, 0);
    assert!(r.recovery.backoff_s > 0.0);
    // The retry's result lands in the right global slot.
    assert!(r.ensemble.stdout[2].starts_with("instance 0 sum"));
    assert_eq!(r.ensemble.metrics[2].attempt, 1);
    assert_eq!(r.ensemble.metrics[2].instance, 2);
    assert_eq!(r.ensemble.metrics[1].attempt, 0);
    // Cumulative-vs-final split in the launch rollup.
    let lm = r.launch_metrics();
    assert_eq!((lm.failed, lm.unrecovered), (1, 0));
    assert_eq!((lm.attempts, lm.retried, lm.recovered), (2, 1, 1));
    assert_eq!(lm.kernel, "bench-x4");
    assert_eq!(gpu.mem.stats().live_allocations, 0);
}

#[test]
fn every_attempt_trap_exhausts_and_stays_failed() {
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n"),
        &opts(3),
        0,
        &trap_on(1, None),
        &RecoveryPolicy {
            max_attempts: 2,
            ..Default::default()
        },
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(!r.all_succeeded());
    assert_eq!(r.recovery.attempts, 2);
    assert_eq!(r.recovery.failures, 2, "both attempts failed");
    assert_eq!(r.recovery.recovered, 0);
    assert_eq!(r.recovery.unrecovered, 1);
    let bad = &r.ensemble.instances[1];
    assert!(bad.error.as_deref().unwrap().contains("injected"));
    // The healthy instances completed on the first attempt.
    assert!(r.ensemble.instances[0].succeeded());
    assert!(r.ensemble.instances[2].succeeded());
}

#[test]
fn device_oom_splits_the_batch_and_completes_all_instances() {
    // The acceptance scenario: a Page-Rank-shaped ensemble of 8 whose
    // footprint only fits 4 concurrently. The plan forces device OOM at
    // concurrency >= 5; the driver halves 8 -> 4 and everything recovers.
    let plan = FaultPlan {
        device_deaths: None,
        seed: 0,
        faults: vec![FaultSpec {
            instance: None,
            attempt: None,
            kind: FaultKind::DeviceOom {
                min_concurrent: 5,
                requested_bytes: 8 << 30,
            },
        }],
    };
    let mut gpu = Gpu::a100();
    let mut obs = Recorder::enabled();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n"),
        &opts(8),
        0,
        &plan,
        &RecoveryPolicy::default(),
        &mut obs,
    )
    .unwrap();
    assert!(r.all_succeeded(), "{:?}", r.ensemble.instances);
    assert_eq!(r.recovery.attempts, 2);
    assert_eq!(r.recovery.oom_failures, 8);
    assert_eq!(r.recovery.oom_splits, 1);
    assert_eq!(r.recovery.final_batch, 4);
    assert_eq!(r.recovery.recovered, 8);
    assert_eq!(r.recovery.unrecovered, 0);
    // Rollup: cumulative OOMs visible, nothing unrecovered, batch halved.
    let lm = r.launch_metrics();
    assert_eq!(lm.oom, 8);
    assert_eq!(lm.unrecovered, 0);
    assert_eq!((lm.oom_splits, lm.final_batch), (1, 4));
    assert_eq!(lm.instances, 8);
    // The recovery story is on the trace: failures, the split, the retry.
    let recovery: Vec<&str> = obs
        .events()
        .iter()
        .filter(|e| e.cat == "recovery")
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(
        recovery.iter().filter(|n| n.contains("failed")).count(),
        8,
        "{recovery:?}"
    );
    assert!(recovery.contains(&"batch split to 4"), "{recovery:?}");
    assert!(recovery.contains(&"retry round 1"), "{recovery:?}");
    assert_eq!(gpu.mem.stats().live_allocations, 0);
}

#[test]
fn hung_instance_times_out_and_recovers() {
    let plan = FaultPlan {
        device_deaths: None,
        seed: 0,
        faults: vec![FaultSpec {
            instance: Some(1),
            attempt: Some(0),
            kind: FaultKind::Hang { stall_cycles: 1e9 },
        }],
    };
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n"),
        &opts(3),
        0,
        &plan,
        &RecoveryPolicy {
            instance_cycle_budget: Some(1e6),
            ..Default::default()
        },
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(r.all_succeeded(), "{:?}", r.ensemble.instances);
    assert_eq!(r.recovery.timeouts, 1);
    assert_eq!(r.recovery.recovered, 1);
    // The watchdog reaped the hang instead of simulating 1e9 cycles.
    assert!(r.ensemble.kernel_time_s < gpu.spec.cycles_to_seconds(1e8));
}

#[test]
fn corrupted_rpc_reply_traps_then_recovers() {
    let plan = FaultPlan {
        device_deaths: None,
        seed: 0,
        faults: vec![FaultSpec {
            instance: Some(0),
            attempt: Some(0),
            kind: FaultKind::RpcCorrupt { after_calls: 0 },
        }],
    };
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n-n 200\n"),
        &opts(2),
        0,
        &plan,
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    // The corrupted printf reply trapped instance 0 on attempt 0; the
    // interceptor runs before the service, so the retry is clean.
    assert!(r.all_succeeded(), "{:?}", r.ensemble.instances);
    assert_eq!(r.recovery.failures, 1);
    assert_eq!(r.recovery.recovered, 1);
    let sum_100: f64 = (0..100).map(|i| i as f64).sum();
    assert_eq!(
        r.ensemble.stdout[0],
        format!("instance 0 sum {sum_100:.1}\n")
    );
}

#[test]
fn injected_rpc_failure_is_a_typed_host_error() {
    let plan = FaultPlan {
        device_deaths: None,
        seed: 0,
        faults: vec![FaultSpec {
            instance: Some(0),
            attempt: None,
            kind: FaultKind::RpcFail { after_calls: 0 },
        }],
    };
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n"),
        &opts(1),
        0,
        &plan,
        &RecoveryPolicy {
            max_attempts: 1,
            ..Default::default()
        },
        &mut Recorder::disabled(),
    )
    .unwrap();
    let err = r.ensemble.instances[0].error.as_deref().unwrap();
    assert!(
        err.contains("host call failed") && err.contains("injected"),
        "{err}"
    );
}

#[test]
fn fail_fast_skips_remaining_work() {
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &lines("-n 100\n"),
        &opts(4),
        1,
        &trap_on(0, None),
        &RecoveryPolicy {
            max_attempts: 1,
            fail_fast: true,
            ..Default::default()
        },
        &mut Recorder::disabled(),
    )
    .unwrap();
    // Instance 0 exhausts its single attempt in the first chunk; the
    // other three never launch.
    assert_eq!(r.recovery.skipped, 3);
    assert_eq!(r.recovery.unrecovered, 4);
    for i in 1..4 {
        assert_eq!(
            r.ensemble.instances[i].error.as_deref(),
            Some("skipped: fail-fast")
        );
        assert_eq!(r.ensemble.stdout[i], "");
    }
}

#[test]
fn nonzero_exit_is_not_retried() {
    fn exit_main(_team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
        Ok(if cx.instance == 1 { 3 } else { 0 })
    }
    let a = HostApp::new("bench", MODULE, exit_main);
    let mut gpu = Gpu::a100();
    let r = run_ensemble_resilient(
        &mut gpu,
        &a,
        &lines("-x\n"),
        &opts(2),
        0,
        &FaultPlan::default(),
        &RecoveryPolicy::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    // A deterministic application result is not a fault: one round only,
    // but the exit still counts as failed/unrecovered.
    assert_eq!(r.recovery.attempts, 1);
    assert_eq!(r.recovery.retried, 0);
    assert_eq!(r.recovery.failures, 1);
    assert_eq!(r.recovery.unrecovered, 1);
    assert_eq!(r.ensemble.instances[1].exit_code, Some(3));
}

#[test]
fn batched_and_unbatched_recovery_agree_under_a_trap() {
    let plan = trap_on(3, Some(0));
    let run = |batch| {
        let mut gpu = Gpu::a100();
        run_ensemble_resilient(
            &mut gpu,
            &app(),
            &lines("-n 100\n-n 200\n-n 300\n"),
            &opts(6),
            batch,
            &plan,
            &RecoveryPolicy::default(),
            &mut Recorder::disabled(),
        )
        .unwrap()
    };
    let concurrent = run(0);
    let batched = run(2);
    // Same final payloads and the same recovery story, whatever the
    // batching (timings legitimately differ).
    let sums = |r: &dgc_fault::ResilientResult| -> Vec<String> {
        r.ensemble
            .stdout
            .iter()
            .map(|s| s.split("sum ").nth(1).unwrap().to_string())
            .collect()
    };
    assert!(concurrent.all_succeeded() && batched.all_succeeded());
    assert_eq!(sums(&concurrent), sums(&batched));
    assert_eq!(concurrent.recovery.retried, batched.recovery.retried);
    assert_eq!(concurrent.recovery.recovered, batched.recovery.recovered);
    assert_eq!(concurrent.recovery.failures, batched.recovery.failures);
}

#[test]
fn empty_plan_traced_run_is_bit_identical_to_batched() {
    let arg_lines = lines("-n 100\n-n 200\n-n 300\n");
    let mut gpu = Gpu::a100();
    let mut obs_b = Recorder::enabled();
    let baseline =
        run_ensemble_batched_traced(&mut gpu, &app(), &arg_lines, &opts(6), 2, &mut obs_b).unwrap();
    let mut gpu = Gpu::a100();
    let mut obs_r = Recorder::enabled();
    let r = run_ensemble_resilient(
        &mut gpu,
        &app(),
        &arg_lines,
        &opts(6),
        2,
        &FaultPlan::default(),
        &RecoveryPolicy::default(),
        &mut obs_r,
    )
    .unwrap();
    assert_eq!(r.ensemble.instances, baseline.instances);
    assert_eq!(r.ensemble.stdout, baseline.stdout);
    assert_eq!(r.ensemble.report, baseline.report);
    assert_eq!(r.ensemble.kernel_time_s, baseline.kernel_time_s);
    assert_eq!(r.ensemble.total_time_s, baseline.total_time_s);
    assert_eq!(
        r.ensemble.instance_end_times_s,
        baseline.instance_end_times_s
    );
    assert_eq!(r.ensemble.metrics, baseline.metrics);
    assert_eq!(r.ensemble.rpc_stats, baseline.rpc_stats);
    // Even the trace is byte-for-byte the same: with no faults the
    // driver records nothing of its own.
    assert_eq!(obs_r.to_chrome_trace(), obs_b.to_chrome_trace());
    assert_eq!(r.recovery.attempts, 1);
    assert_eq!(r.recovery.backoff_s, 0.0);
}
