use crate::module::{Attr, Function, Global, Module};

/// Errors produced while parsing the textual module format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl Module {
    /// Parse the textual module format produced by `Display`.
    ///
    /// ```text
    /// # comment
    /// module "name" {
    ///   global @g size=8 align=8 const !declare_target
    ///   func @main arity=2 calls(@foo, @printf) !parallel(1)
    ///   extern func @printf variadic
    /// }
    /// ```
    pub fn parse(text: &str) -> Result<Module, ParseError> {
        let mut module: Option<Module> = None;
        let mut closed = false;
        for (ln, raw) in text.lines().enumerate() {
            let lineno = ln + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("module") {
                if module.is_some() {
                    return Err(err(lineno, "duplicate module header"));
                }
                let rest = rest.trim();
                let name = rest
                    .strip_prefix('"')
                    .and_then(|r| r.split_once('"'))
                    .ok_or_else(|| err(lineno, "expected module \"name\""))?;
                if !name.1.trim_start().starts_with('{') {
                    return Err(err(lineno, "expected '{' after module name"));
                }
                module = Some(Module::new(name.0));
                continue;
            }
            if line == "}" {
                if module.is_none() {
                    return Err(err(lineno, "'}' before module header"));
                }
                closed = true;
                continue;
            }
            if closed {
                return Err(err(lineno, "content after closing '}'"));
            }
            let m = module
                .as_mut()
                .ok_or_else(|| err(lineno, "symbol before module header"))?;
            if line.starts_with("global ") {
                m.globals.push(parse_global(line, lineno)?);
            } else if line.starts_with("func ") || line.starts_with("extern func ") {
                m.functions.push(parse_function(line, lineno)?);
            } else {
                return Err(err(lineno, format!("unrecognized directive: {line}")));
            }
        }
        let m = module.ok_or_else(|| err(0, "no module header"))?;
        if !closed {
            return Err(err(0, "missing closing '}'"));
        }
        Ok(m)
    }
}

/// Split a declaration body into whitespace tokens, keeping `(...)` groups
/// attached to the token that opens them.
fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn parse_symbol_name(tok: &str, lineno: usize) -> Result<String, ParseError> {
    tok.strip_prefix('@')
        .filter(|n| !n.is_empty())
        .map(str::to_string)
        .ok_or_else(|| err(lineno, format!("expected @name, got '{tok}'")))
}

fn parse_attr(tok: &str, lineno: usize) -> Result<Attr, ParseError> {
    let body = &tok[1..];
    let (name, arg) = match body.split_once('(') {
        Some((n, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| err(lineno, format!("unterminated attr arg in '{tok}'")))?;
            (n, Some(arg))
        }
        None => (body, None),
    };
    match (name, arg) {
        ("declare_target", None) => Ok(Attr::DeclareTarget),
        ("nohost", None) => Ok(Attr::NoHost),
        ("order_independent", None) => Ok(Attr::OrderIndependentParallel),
        ("main_wrapper", None) => Ok(Attr::MainWrapper),
        ("rpc_stub", Some(a)) => a
            .parse()
            .map(Attr::RpcStub)
            .map_err(|_| err(lineno, format!("bad rpc_stub id '{a}'"))),
        ("parallel", Some(a)) => a
            .parse()
            .map(Attr::ParallelRegions)
            .map_err(|_| err(lineno, format!("bad parallel count '{a}'"))),
        ("renamed_from", Some(a)) => {
            let inner = a
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err(lineno, "renamed_from expects a quoted name"))?;
            Ok(Attr::RenamedFrom(inner.to_string()))
        }
        _ => Err(err(lineno, format!("unknown attribute '{tok}'"))),
    }
}

fn parse_global(line: &str, lineno: usize) -> Result<Global, ParseError> {
    let body = line.strip_prefix("global").unwrap().trim();
    let tokens = tokenize(body);
    let mut it = tokens.iter();
    let name = parse_symbol_name(
        it.next()
            .ok_or_else(|| err(lineno, "global needs a name"))?,
        lineno,
    )?;
    let mut g = Global::new(&name, 0);
    let mut saw_size = false;
    for tok in it {
        if let Some(v) = tok.strip_prefix("size=") {
            g.size = v
                .parse()
                .map_err(|_| err(lineno, format!("bad size '{v}'")))?;
            saw_size = true;
        } else if let Some(v) = tok.strip_prefix("align=") {
            g.align = v
                .parse()
                .map_err(|_| err(lineno, format!("bad align '{v}'")))?;
        } else if tok == "const" {
            g.is_const = true;
        } else if let Some(v) = tok.strip_prefix("placement=") {
            g.placement = match v {
                "device" => crate::module::GlobalPlacement::DeviceGlobal,
                "shared" => crate::module::GlobalPlacement::TeamShared,
                "constant" => crate::module::GlobalPlacement::Constant,
                _ => return Err(err(lineno, format!("bad placement '{v}'"))),
            };
        } else if tok.starts_with('!') {
            g.attrs.add(parse_attr(tok, lineno)?);
        } else {
            return Err(err(lineno, format!("unexpected token '{tok}' in global")));
        }
    }
    if !saw_size {
        return Err(err(lineno, format!("global @{name} missing size=")));
    }
    Ok(g)
}

fn parse_function(line: &str, lineno: usize) -> Result<Function, ParseError> {
    let (defined, body) = match line.strip_prefix("extern func") {
        Some(rest) => (false, rest.trim()),
        None => (true, line.strip_prefix("func").unwrap().trim()),
    };
    let tokens = tokenize(body);
    let mut it = tokens.iter();
    let name = parse_symbol_name(
        it.next().ok_or_else(|| err(lineno, "func needs a name"))?,
        lineno,
    )?;
    let mut f = if defined {
        Function::defined(&name, 0)
    } else {
        Function::external(&name)
    };
    for tok in it {
        if let Some(v) = tok.strip_prefix("arity=") {
            f.arity = v
                .parse()
                .map_err(|_| err(lineno, format!("bad arity '{v}'")))?;
        } else if tok == "variadic" {
            f.variadic = true;
        } else if let Some(rest) = tok.strip_prefix("calls(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| err(lineno, "unterminated calls(...)"))?;
            for callee in inner.split(',') {
                let callee = callee.trim();
                if callee.is_empty() {
                    continue;
                }
                f.callees.push(parse_symbol_name(callee, lineno)?);
            }
        } else if tok.starts_with('!') {
            f.attrs.add(parse_attr(tok, lineno)?);
        } else {
            return Err(err(lineno, format!("unexpected token '{tok}' in func")));
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Attr, GlobalPlacement};

    const SAMPLE: &str = r#"
# An example legacy application.
module "xs" {
  global @grid size=4096 align=8 const
  global @counter size=8 align=8
  func @main arity=2 calls(@setup, @run, @printf)
  func @setup arity=1 calls(@malloc)
  func @run arity=0 calls(@lookup) !parallel(1) !order_independent
  func @lookup arity=3
  extern func @printf variadic
  extern func @malloc
}
"#;

    #[test]
    fn parses_sample() {
        let m = Module::parse(SAMPLE).unwrap();
        assert_eq!(m.name, "xs");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.functions.len(), 6);
        assert!(m.global("grid").unwrap().is_const);
        assert_eq!(
            m.global("grid").unwrap().placement,
            GlobalPlacement::DeviceGlobal
        );
        let run = m.function("run").unwrap();
        assert_eq!(run.attrs.parallel_regions(), 1);
        assert!(run.attrs.has(&Attr::OrderIndependentParallel));
        assert_eq!(
            m.function("main").unwrap().callees,
            vec!["setup", "run", "printf"]
        );
        assert!(m.function("printf").unwrap().variadic);
        assert!(!m.function("malloc").unwrap().defined);
    }

    #[test]
    fn roundtrips_through_display() {
        let m = Module::parse(SAMPLE).unwrap();
        let printed = m.to_string();
        let again = Module::parse(&printed).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn roundtrips_attrs_with_args() {
        let mut m = Module::new("a");
        m.add_function(
            crate::module::Function::defined("x", 0)
                .with_attr(Attr::RpcStub(4))
                .with_attr(Attr::RenamedFrom("main".into())),
        );
        let again = Module::parse(&m.to_string()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn rejects_missing_header() {
        let e = Module::parse("func @x arity=0").unwrap_err();
        assert!(e.message.contains("before module header"));
    }

    #[test]
    fn rejects_missing_close() {
        let e = Module::parse("module \"m\" {").unwrap_err();
        assert!(e.message.contains("missing closing"));
    }

    #[test]
    fn rejects_bad_tokens() {
        let text = "module \"m\" {\n  func @a arity=zebra\n}";
        let e = Module::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad arity"));
    }

    #[test]
    fn rejects_global_without_size() {
        let text = "module \"m\" {\n  global @g align=8\n}";
        let e = Module::parse(text).unwrap_err();
        assert!(e.message.contains("missing size"));
    }

    #[test]
    fn rejects_unknown_attr() {
        let text = "module \"m\" {\n  func @a arity=0 !wat\n}";
        assert!(Module::parse(text).is_err());
    }

    #[test]
    fn rejects_content_after_close() {
        let text = "module \"m\" {\n}\nfunc @x arity=0";
        let e = Module::parse(text).unwrap_err();
        assert!(e.message.contains("after closing"));
    }

    #[test]
    fn empty_calls_list_is_ok() {
        let text = "module \"m\" {\n  func @a arity=0 calls()\n}";
        let m = Module::parse(text).unwrap();
        assert!(m.function("a").unwrap().callees.is_empty());
    }
}
