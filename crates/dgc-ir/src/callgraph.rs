use crate::module::Module;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call graph over a module's functions. Nodes are function names; edges
/// follow `callees` lists. External declarations are sink nodes.
#[derive(Debug, Clone)]
pub struct CallGraph {
    edges: BTreeMap<String, Vec<String>>,
}

impl CallGraph {
    pub fn build(module: &Module) -> Self {
        let mut edges = BTreeMap::new();
        for f in &module.functions {
            edges.insert(f.name.clone(), f.callees.clone());
        }
        Self { edges }
    }

    /// Direct callees of `name` (empty for unknown names).
    pub fn callees(&self, name: &str) -> &[String] {
        self.edges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All functions reachable from `root`, including `root` itself.
    /// Edges to names not present in the module are ignored.
    pub fn reachable_from(&self, root: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        if self.edges.contains_key(root) {
            seen.insert(root.to_string());
            queue.push_back(root.to_string());
        }
        while let Some(f) = queue.pop_front() {
            for callee in self.callees(&f) {
                if self.edges.contains_key(callee) && seen.insert(callee.clone()) {
                    queue.push_back(callee.clone());
                }
            }
        }
        seen
    }

    /// Functions that directly call `name`.
    pub fn callers_of(&self, name: &str) -> Vec<String> {
        self.edges
            .iter()
            .filter(|(_, callees)| callees.iter().any(|c| c == name))
            .map(|(caller, _)| caller.clone())
            .collect()
    }

    /// Reverse-postorder (callees before callers) over the subgraph
    /// reachable from `root`. Cycles are broken at the back edge, so the
    /// order is a best-effort topological order.
    pub fn bottom_up_order(&self, root: &str) -> Vec<String> {
        let mut order = Vec::new();
        let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = visiting, 2 = done
        self.dfs(root, &mut state, &mut order);
        order
    }

    fn dfs<'a>(&'a self, f: &'a str, state: &mut BTreeMap<&'a str, u8>, order: &mut Vec<String>) {
        if !self.edges.contains_key(f) || state.get(f).copied().unwrap_or(0) != 0 {
            return;
        }
        state.insert(f, 1);
        if let Some(callees) = self.edges.get(f) {
            for c in callees {
                self.dfs(c, state, order);
            }
        }
        state.insert(f, 2);
        order.push(f.to_string());
    }

    /// Whether the subgraph reachable from `root` contains a cycle
    /// (recursion — which the device runtime must bound).
    pub fn has_recursion(&self, root: &str) -> bool {
        fn walk<'a>(g: &'a CallGraph, f: &'a str, state: &mut BTreeMap<&'a str, u8>) -> bool {
            match state.get(f).copied().unwrap_or(0) {
                1 => return true, // back edge
                2 => return false,
                _ => {}
            }
            if !g.edges.contains_key(f) {
                return false;
            }
            state.insert(f, 1);
            for c in g.callees(f) {
                if g.edges.contains_key(c) && walk(g, c, state) {
                    return true;
                }
            }
            state.insert(f, 2);
            false
        }
        walk(self, root, &mut BTreeMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;

    fn module() -> Module {
        let mut m = Module::new("cg");
        m.add_function(Function::defined("main", 2).with_callees(&["a", "b"]));
        m.add_function(Function::defined("a", 0).with_callees(&["c"]));
        m.add_function(Function::defined("b", 0).with_callees(&["c", "printf"]));
        m.add_function(Function::defined("c", 0));
        m.add_function(Function::defined("dead", 0).with_callees(&["a"]));
        m.add_function(Function::external("printf"));
        m
    }

    #[test]
    fn reachability() {
        let g = CallGraph::build(&module());
        let r = g.reachable_from("main");
        assert!(r.contains("main") && r.contains("a") && r.contains("c") && r.contains("printf"));
        assert!(!r.contains("dead"));
        assert!(g.reachable_from("ghost").is_empty());
    }

    #[test]
    fn callers() {
        let g = CallGraph::build(&module());
        let mut callers = g.callers_of("c");
        callers.sort();
        assert_eq!(callers, vec!["a", "b"]);
        assert_eq!(g.callers_of("main"), Vec::<String>::new());
    }

    #[test]
    fn bottom_up_has_callees_first() {
        let g = CallGraph::build(&module());
        let order = g.bottom_up_order("main");
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("c") < pos("a"));
        assert!(pos("c") < pos("b"));
        assert!(pos("a") < pos("main"));
        assert_eq!(*order.last().unwrap(), "main");
    }

    #[test]
    fn recursion_detection() {
        let mut m = module();
        assert!(!CallGraph::build(&m).has_recursion("main"));
        m.function_mut("c").unwrap().callees.push("a".into());
        assert!(CallGraph::build(&m).has_recursion("main"));
        // Recursion off the root path is not reported for that root.
        assert!(!CallGraph::build(&m).has_recursion("printf"));
    }

    #[test]
    fn self_recursion() {
        let mut m = Module::new("r");
        m.add_function(Function::defined("f", 0).with_callees(&["f"]));
        assert!(CallGraph::build(&m).has_recursion("f"));
    }
}
