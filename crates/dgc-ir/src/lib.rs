//! Module-level IR for the direct-GPU-compilation pipeline.
//!
//! The compiler work in the direct GPU compilation papers is *symbol
//! surgery*: marking every user symbol `declare target device_type(nohost)`,
//! renaming `main` to `__user_main`, resolving external references either to
//! the partial device libc or to generated host-RPC stubs, and relocating
//! globals. None of it needs instruction-level IR, so this crate models a
//! module as its symbol table plus a call graph:
//!
//! * [`Module`] — named collection of [`Function`]s and [`Global`]s;
//! * [`Attr`]/[`AttrSet`] — `declare target`, `device_type(nohost)`,
//!   RPC-stub markers, and friends;
//! * a textual format ([`Module::parse`] / `Display`) used by application
//!   descriptors and tests, with round-trip guarantees;
//! * [`CallGraph`] — reachability, topological order, recursion detection;
//! * [`Module::verify`] — structural invariants.

mod callgraph;
mod module;
mod parse;
mod print;
mod verify;

pub use callgraph::CallGraph;
pub use module::{Attr, AttrSet, Function, Global, GlobalPlacement, Module, Symbol};
pub use parse::ParseError;
pub use verify::VerifyError;
