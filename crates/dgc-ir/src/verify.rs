use crate::module::Module;

/// Structural problems found by [`Module::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Two symbols share a name.
    DuplicateSymbol { name: String },
    /// A call edge points at a symbol that does not exist at all.
    UnknownCallee { caller: String, callee: String },
    /// A call edge targets a global variable.
    CalleeIsGlobal { caller: String, callee: String },
    /// An external declaration claims to call things.
    ExternalWithCallees { name: String },
    /// A global has zero size.
    ZeroSizedGlobal { name: String },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::DuplicateSymbol { name } => write!(f, "duplicate symbol @{name}"),
            VerifyError::UnknownCallee { caller, callee } => {
                write!(f, "@{caller} calls undeclared @{callee}")
            }
            VerifyError::CalleeIsGlobal { caller, callee } => {
                write!(f, "@{caller} calls global variable @{callee}")
            }
            VerifyError::ExternalWithCallees { name } => {
                write!(f, "external @{name} cannot have call edges")
            }
            VerifyError::ZeroSizedGlobal { name } => write!(f, "global @{name} has zero size"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl Module {
    /// Check structural invariants; returns every violation found.
    pub fn verify(&self) -> Vec<VerifyError> {
        let mut errors = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for f in &self.functions {
            if !seen.insert(f.name.clone()) {
                errors.push(VerifyError::DuplicateSymbol {
                    name: f.name.clone(),
                });
            }
        }
        for g in &self.globals {
            if !seen.insert(g.name.clone()) {
                errors.push(VerifyError::DuplicateSymbol {
                    name: g.name.clone(),
                });
            }
            if g.size == 0 {
                errors.push(VerifyError::ZeroSizedGlobal {
                    name: g.name.clone(),
                });
            }
        }
        for f in &self.functions {
            if !f.defined && !f.callees.is_empty() {
                errors.push(VerifyError::ExternalWithCallees {
                    name: f.name.clone(),
                });
            }
            for c in &f.callees {
                if self.function(c).is_none() {
                    if self.global(c).is_some() {
                        errors.push(VerifyError::CalleeIsGlobal {
                            caller: f.name.clone(),
                            callee: c.clone(),
                        });
                    } else {
                        errors.push(VerifyError::UnknownCallee {
                            caller: f.name.clone(),
                            callee: c.clone(),
                        });
                    }
                }
            }
        }
        errors
    }

    /// Convenience: `Ok(())` if [`Module::verify`] found nothing.
    pub fn verify_ok(&self) -> Result<(), VerifyError> {
        match self.verify().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global};

    #[test]
    fn clean_module_verifies() {
        let mut m = Module::new("ok");
        m.add_function(Function::defined("main", 2).with_callees(&["helper"]));
        m.add_function(Function::defined("helper", 0));
        m.add_global(Global::new("g", 8));
        assert!(m.verify().is_empty());
        assert!(m.verify_ok().is_ok());
    }

    #[test]
    fn duplicate_names_flagged() {
        let mut m = Module::new("dup");
        m.add_function(Function::defined("x", 0));
        m.add_function(Function::defined("x", 0));
        m.add_global(Global::new("x", 8));
        let errs = m.verify();
        assert_eq!(
            errs.iter()
                .filter(|e| matches!(e, VerifyError::DuplicateSymbol { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn unknown_callee_flagged() {
        let mut m = Module::new("uk");
        m.add_function(Function::defined("main", 2).with_callees(&["ghost"]));
        assert_eq!(
            m.verify(),
            vec![VerifyError::UnknownCallee {
                caller: "main".into(),
                callee: "ghost".into()
            }]
        );
    }

    #[test]
    fn calling_global_flagged() {
        let mut m = Module::new("cg");
        m.add_function(Function::defined("main", 2).with_callees(&["g"]));
        m.add_global(Global::new("g", 8));
        assert!(matches!(
            m.verify_ok().unwrap_err(),
            VerifyError::CalleeIsGlobal { .. }
        ));
    }

    #[test]
    fn external_with_callees_flagged() {
        let mut m = Module::new("ex");
        let mut f = Function::external("printf");
        f.callees.push("x".into());
        m.add_function(f);
        m.add_function(Function::defined("x", 0));
        assert!(m
            .verify()
            .iter()
            .any(|e| matches!(e, VerifyError::ExternalWithCallees { .. })));
    }

    #[test]
    fn zero_sized_global_flagged() {
        let mut m = Module::new("z");
        m.add_global(Global::new("empty", 0));
        assert!(matches!(
            m.verify_ok().unwrap_err(),
            VerifyError::ZeroSizedGlobal { .. }
        ));
    }
}
