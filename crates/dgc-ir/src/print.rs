use crate::module::{Function, Global, Module};
use std::fmt;

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module \"{}\" {{", self.name)?;
        for g in &self.globals {
            write!(f, "  {g}")?;
            writeln!(f)?;
        }
        for func in &self.functions {
            write!(f, "  {func}")?;
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Global {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global @{} size={} align={}",
            self.name, self.size, self.align
        )?;
        if self.is_const {
            write!(f, " const")?;
        }
        if self.placement != crate::module::GlobalPlacement::DeviceGlobal {
            write!(f, " placement={}", self.placement)?;
        }
        for a in self.attrs.iter() {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.defined {
            write!(f, "func @{} arity={}", self.name, self.arity)?;
        } else {
            write!(f, "extern func @{}", self.name)?;
        }
        if self.variadic {
            write!(f, " variadic")?;
        }
        if !self.callees.is_empty() {
            write!(f, " calls(")?;
            for (i, c) in self.callees.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "@{c}")?;
            }
            write!(f, ")")?;
        }
        for a in self.attrs.iter() {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::module::{Attr, Function, Global, Module};

    #[test]
    fn prints_expected_shapes() {
        let mut m = Module::new("demo");
        m.add_global(Global::new("g", 8));
        m.add_function(
            Function::defined("main", 2)
                .with_callees(&["foo"])
                .with_attr(Attr::DeclareTarget),
        );
        m.add_function(Function::external("printf").with_variadic());
        let s = m.to_string();
        assert!(s.contains("module \"demo\" {"));
        assert!(s.contains("global @g size=8 align=8"));
        assert!(s.contains("func @main arity=2 calls(@foo) !declare_target"));
        assert!(s.contains("extern func @printf variadic"));
    }
}
