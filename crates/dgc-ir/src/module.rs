use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A symbol-level attribute. The OpenMP-flavoured ones mirror the pragmas
/// of the direct-GPU-compilation scheme; the rest are produced by passes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Attr {
    /// `#pragma omp declare target` — symbol is mapped to the device.
    DeclareTarget,
    /// `device_type(nohost)` — no host version is emitted.
    NoHost,
    /// Generated host-RPC stub for the given service id.
    RpcStub(u32),
    /// Function body contains this many `parallel` regions.
    ParallelRegions(u32),
    /// Parallel regions are semantically safe for multi-team expansion
    /// (the \[27\] "GPU-first" analysis result).
    OrderIndependentParallel,
    /// Symbol was renamed from this original name.
    RenamedFrom(String),
    /// Marks the loader-provided main wrapper (host entry point).
    MainWrapper,
}

impl std::fmt::Display for Attr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Attr::DeclareTarget => write!(f, "!declare_target"),
            Attr::NoHost => write!(f, "!nohost"),
            Attr::RpcStub(s) => write!(f, "!rpc_stub({s})"),
            Attr::ParallelRegions(n) => write!(f, "!parallel({n})"),
            Attr::OrderIndependentParallel => write!(f, "!order_independent"),
            Attr::RenamedFrom(n) => write!(f, "!renamed_from(\"{n}\")"),
            Attr::MainWrapper => write!(f, "!main_wrapper"),
        }
    }
}

/// An ordered attribute set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSet(BTreeSet<Attr>);

impl AttrSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, a: Attr) {
        self.0.insert(a);
    }

    pub fn has(&self, a: &Attr) -> bool {
        self.0.contains(a)
    }

    pub fn remove(&mut self, a: &Attr) -> bool {
        self.0.remove(a)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Attr> {
        self.0.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if the symbol carries `declare target device_type(nohost)`.
    pub fn is_nohost_device(&self) -> bool {
        self.has(&Attr::DeclareTarget) && self.has(&Attr::NoHost)
    }

    /// The RPC service id if this is a generated stub.
    pub fn rpc_service(&self) -> Option<u32> {
        self.0.iter().find_map(|a| match a {
            Attr::RpcStub(s) => Some(*s),
            _ => None,
        })
    }

    /// Number of parallel regions recorded, 0 if none.
    pub fn parallel_regions(&self) -> u32 {
        self.0
            .iter()
            .find_map(|a| match a {
                Attr::ParallelRegions(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(0)
    }
}

/// A function symbol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    /// Number of formal parameters (before canonicalization `main` may
    /// have 0, 2 or 3).
    pub arity: u8,
    pub variadic: bool,
    /// Defined in this module (vs. an external declaration).
    pub defined: bool,
    /// Names of directly-called functions.
    pub callees: Vec<String>,
    pub attrs: AttrSet,
}

impl Function {
    pub fn defined(name: &str, arity: u8) -> Self {
        Self {
            name: name.to_string(),
            arity,
            variadic: false,
            defined: true,
            callees: Vec::new(),
            attrs: AttrSet::new(),
        }
    }

    pub fn external(name: &str) -> Self {
        Self {
            name: name.to_string(),
            arity: 0,
            variadic: false,
            defined: false,
            callees: Vec::new(),
            attrs: AttrSet::new(),
        }
    }

    pub fn with_callees(mut self, callees: &[&str]) -> Self {
        self.callees = callees.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_attr(mut self, a: Attr) -> Self {
        self.attrs.add(a);
        self
    }

    pub fn with_variadic(mut self) -> Self {
        self.variadic = true;
        self
    }
}

/// Where a pass decided a global lives on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GlobalPlacement {
    /// Device global memory — shared by *all* teams; under ensemble
    /// execution this is the §3.3 isolation hazard.
    #[default]
    DeviceGlobal,
    /// Team-local shared memory (the §3.3 proposed transform).
    TeamShared,
    /// Constant memory (immutable; safe to share across instances).
    Constant,
}

impl std::fmt::Display for GlobalPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlobalPlacement::DeviceGlobal => write!(f, "device"),
            GlobalPlacement::TeamShared => write!(f, "shared"),
            GlobalPlacement::Constant => write!(f, "constant"),
        }
    }
}

/// A global-variable symbol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    pub name: String,
    pub size: u64,
    pub align: u32,
    pub is_const: bool,
    pub attrs: AttrSet,
    pub placement: GlobalPlacement,
}

impl Global {
    pub fn new(name: &str, size: u64) -> Self {
        Self {
            name: name.to_string(),
            size,
            align: 8,
            is_const: false,
            attrs: AttrSet::new(),
            placement: GlobalPlacement::DeviceGlobal,
        }
    }

    pub fn constant(mut self) -> Self {
        self.is_const = true;
        self
    }
}

/// Either kind of symbol, by reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol<'a> {
    Function(&'a Function),
    Global(&'a Global),
}

impl<'a> Symbol<'a> {
    pub fn name(&self) -> &str {
        match self {
            Symbol::Function(f) => &f.name,
            Symbol::Global(g) => &g.name,
        }
    }

    pub fn attrs(&self) -> &AttrSet {
        match self {
            Symbol::Function(f) => &f.attrs,
            Symbol::Global(g) => &g.attrs,
        }
    }
}

/// A translation unit after linking: the unit the custom link-time
/// optimization passes of the direct-GPU-compilation scheme operate on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
}

impl Module {
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    pub fn add_function(&mut self, f: Function) -> &mut Self {
        self.functions.push(f);
        self
    }

    pub fn add_global(&mut self, g: Global) -> &mut Self {
        self.globals.push(g);
        self
    }

    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    pub fn global_mut(&mut self, name: &str) -> Option<&mut Global> {
        self.globals.iter_mut().find(|g| g.name == name)
    }

    pub fn symbol(&self, name: &str) -> Option<Symbol<'_>> {
        self.function(name)
            .map(Symbol::Function)
            .or_else(|| self.global(name).map(Symbol::Global))
    }

    /// Rename a function, preserving all call edges and recording the old
    /// name as an attribute. Returns false if `old` does not exist or
    /// `new` already does.
    pub fn rename_function(&mut self, old: &str, new: &str) -> bool {
        if self.function(new).is_some() || self.function(old).is_none() {
            return false;
        }
        for f in &mut self.functions {
            for c in &mut f.callees {
                if c == old {
                    *c = new.to_string();
                }
            }
        }
        let f = self.function_mut(old).expect("checked above");
        f.attrs.add(Attr::RenamedFrom(old.to_string()));
        f.name = new.to_string();
        true
    }

    /// All functions defined in this module.
    pub fn defined_functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.defined)
    }

    /// All external (undefined) function declarations.
    pub fn external_functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| !f.defined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        let mut m = Module::new("app");
        m.add_function(Function::defined("main", 2).with_callees(&["compute", "printf"]));
        m.add_function(Function::defined("compute", 1).with_attr(Attr::ParallelRegions(2)));
        m.add_function(Function::external("printf").with_variadic());
        m.add_global(Global::new("counter", 8));
        m.add_global(Global::new("table", 4096).constant());
        m
    }

    #[test]
    fn lookup_and_kind() {
        let m = sample();
        assert!(m.function("main").unwrap().defined);
        assert!(!m.function("printf").unwrap().defined);
        assert!(m.global("table").unwrap().is_const);
        assert!(m.symbol("counter").is_some());
        assert!(m.symbol("nope").is_none());
        assert_eq!(m.defined_functions().count(), 2);
        assert_eq!(m.external_functions().count(), 1);
    }

    #[test]
    fn rename_rewrites_call_edges() {
        let mut m = sample();
        assert!(m.rename_function("main", "__user_main"));
        assert!(m.function("main").is_none());
        let f = m.function("__user_main").unwrap();
        assert!(f.attrs.has(&Attr::RenamedFrom("main".into())));
        // No callers of main here, but self-consistency: compute unchanged.
        assert_eq!(m.function("compute").unwrap().callees.len(), 0);
    }

    #[test]
    fn rename_rejects_conflicts() {
        let mut m = sample();
        assert!(!m.rename_function("main", "compute"));
        assert!(!m.rename_function("ghost", "x"));
    }

    #[test]
    fn rename_updates_callers() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("a", 0).with_callees(&["b"]));
        m.add_function(Function::defined("b", 0));
        assert!(m.rename_function("b", "b2"));
        assert_eq!(m.function("a").unwrap().callees, vec!["b2"]);
    }

    #[test]
    fn attrset_queries() {
        let mut a = AttrSet::new();
        a.add(Attr::DeclareTarget);
        assert!(!a.is_nohost_device());
        a.add(Attr::NoHost);
        assert!(a.is_nohost_device());
        a.add(Attr::RpcStub(3));
        assert_eq!(a.rpc_service(), Some(3));
        a.add(Attr::ParallelRegions(5));
        assert_eq!(a.parallel_regions(), 5);
        assert!(a.remove(&Attr::NoHost));
        assert!(!a.is_nohost_device());
    }

    #[test]
    fn placement_default_is_device_global() {
        let g = Global::new("g", 16);
        assert_eq!(g.placement, GlobalPlacement::DeviceGlobal);
    }
}
