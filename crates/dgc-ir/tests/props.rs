//! Property-based tests: the textual IR round-trips for arbitrary modules.

use dgc_ir::{Attr, CallGraph, Function, Global, Module};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,12}".prop_map(|s| s)
}

fn arb_attr() -> impl Strategy<Value = Attr> {
    prop_oneof![
        Just(Attr::DeclareTarget),
        Just(Attr::NoHost),
        (0u32..8).prop_map(Attr::RpcStub),
        (0u32..5).prop_map(Attr::ParallelRegions),
        Just(Attr::OrderIndependentParallel),
        arb_name().prop_map(Attr::RenamedFrom),
        Just(Attr::MainWrapper),
    ]
}

prop_compose! {
    fn arb_module()(
        fnames in prop::collection::btree_set(arb_name(), 1..8),
        gnames in prop::collection::btree_set(arb_name(), 0..4),
        attrs in prop::collection::vec(arb_attr(), 0..6),
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..10),
        arities in prop::collection::vec(0u8..4, 8),
        defined in prop::collection::vec(any::<bool>(), 8),
        sizes in prop::collection::vec(1u64..10_000, 4),
    ) -> Module {
        // Keep function and global namespaces disjoint.
        let fnames: Vec<String> = fnames.into_iter().map(|n| format!("f_{n}")).collect();
        let gnames: Vec<String> = gnames.into_iter().map(|n| format!("g_{n}")).collect();
        let mut m = Module::new("prop");
        for (i, name) in fnames.iter().enumerate() {
            let mut f = if defined[i % defined.len()] {
                Function::defined(name, arities[i % arities.len()])
            } else {
                Function::external(name)
            };
            if f.defined {
                for &(from, to) in &edges {
                    if from % fnames.len() == i {
                        f.callees.push(fnames[to % fnames.len()].clone());
                    }
                }
            }
            if let Some(a) = attrs.get(i) {
                f.attrs.add(a.clone());
            }
            m.add_function(f);
        }
        for (i, name) in gnames.iter().enumerate() {
            let mut g = Global::new(name, sizes[i % sizes.len()]);
            if i % 2 == 0 {
                g = g.constant();
            }
            m.add_global(g);
        }
        m
    }
}

proptest! {
    /// print → parse is the identity on arbitrary (well-formed) modules.
    #[test]
    fn text_roundtrip(m in arb_module()) {
        let text = m.to_string();
        let parsed = Module::parse(&text).unwrap();
        prop_assert_eq!(m, parsed);
    }

    /// Verification is stable across a round trip.
    #[test]
    fn verify_stable_across_roundtrip(m in arb_module()) {
        let before = m.verify().len();
        let parsed = Module::parse(&m.to_string()).unwrap();
        prop_assert_eq!(before, parsed.verify().len());
    }

    /// Renaming a function preserves the total call-edge count and keeps
    /// reachability isomorphic.
    #[test]
    fn rename_preserves_structure(m in arb_module()) {
        let Some(first) = m.functions.first().map(|f| f.name.clone()) else {
            return Ok(());
        };
        let edge_count = |m: &Module| m.functions.iter().map(|f| f.callees.len()).sum::<usize>();
        let before_edges = edge_count(&m);
        let before_reach = CallGraph::build(&m).reachable_from(&first).len();
        let mut renamed = m.clone();
        prop_assume!(renamed.rename_function(&first, "zz_renamed"));
        prop_assert_eq!(edge_count(&renamed), before_edges);
        let after_reach = CallGraph::build(&renamed).reachable_from("zz_renamed").len();
        prop_assert_eq!(before_reach, after_reach);
    }

    /// Reachability is monotone: adding an edge never shrinks the set.
    #[test]
    fn reachability_monotone(m in arb_module(), from in 0usize..8, to in 0usize..8) {
        let defined: Vec<String> = m.defined_functions().map(|f| f.name.clone()).collect();
        prop_assume!(!defined.is_empty());
        let root = defined[0].clone();
        let before = CallGraph::build(&m).reachable_from(&root);
        let mut m2 = m.clone();
        let src = defined[from % defined.len()].clone();
        let dst = m2.functions[to % m2.functions.len()].name.clone();
        m2.function_mut(&src).unwrap().callees.push(dst);
        let after = CallGraph::build(&m2).reachable_from(&root);
        prop_assert!(before.is_subset(&after));
    }
}
