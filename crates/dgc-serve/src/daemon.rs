//! The ensemble daemon: journaled admission, continuous batching into
//! kernel waves, crash recovery, and retry of failed jobs.
//!
//! Every state transition is journaled *before* it happens (write-ahead
//! discipline) and every simulated quantity is wave-relative, so the
//! merged results of `run → kill -9 → resume` are byte-identical to an
//! uninterrupted run:
//!
//! * a wave's membership is one atomic `started` record;
//! * each wave executes on a **fresh** simulated device, so its results
//!   depend only on membership and order — not on daemon history;
//! * a wave's `done` records are group-committed in one fsync'd write,
//!   and a wave counts as committed only when every member's record is
//!   on disk ([`crate::state::Wave::committed`]);
//! * wave formation is a pure function of the ordered pending list and
//!   the (deterministic) pilot cost model, so a resumed daemon re-forms
//!   exactly the waves the crashed one would have formed.

use crate::journal::{JobDone, JobSpec, Journal, JournalError, Record};
use crate::state::{JobPhase, ServeState};
use dgc_core::{EnsembleError, EnsembleOptions, HostApp};
use dgc_fault::{run_ensemble_resilient, FaultPlan, RecoveryPolicy};
use dgc_monitor::{Counter, Gauge, Histogram, MonitorRegistry};
use dgc_obs::Recorder;
use dgc_sched::{mem_cap_take, wave_take, InstanceCosts};
use gpu_arch::GpuSpec;
use gpu_sim::Gpu;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// How an application name in a job request becomes a runnable
/// [`HostApp`]. The default resolver is the paper's four-benchmark
/// registry; tests plug in cheap synthetic kernels.
pub type AppResolver = fn(&str) -> Option<HostApp>;

/// Daemon configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// `thread_limit` for every wave launch.
    pub thread_limit: u32,
    /// Hard cap on jobs per wave.
    pub max_wave: u32,
    /// Predicted-serial-seconds budget per wave ([`wave_take`]).
    pub wave_budget_s: f64,
    /// Retry policy: `max_attempts` bounds `retry-failed` rounds, the
    /// backoff fields (and opt-in jitter) pace them, and
    /// `instance_cycle_budget` arms the in-wave watchdog.
    pub recovery: RecoveryPolicy,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline_s: Option<f64>,
    /// Wall-clock pause after journaling `started` and before running
    /// the wave — a deterministic window for crash drills (`kill -9`
    /// always lands mid-wave). Zero in production.
    pub wave_pause_ms: u64,
    /// Abort the process once the journal reaches this many bytes
    /// (CI crash injection; see [`Journal`]).
    pub crash_after_journal_bytes: Option<u64>,
    pub resolve: AppResolver,
    /// Live telemetry; also attached to every wave's [`Recorder`] as a
    /// [`dgc_obs::MonitorSink`].
    pub monitor: Option<Arc<MonitorRegistry>>,
    /// Memory-aware wave sizing (default on): pilot peak footprints cap
    /// each wave at device capacity ([`mem_cap_take`]) and wave devices
    /// run the per-team free-list allocator. Off restores the legacy
    /// cost-budget-only waves bit-identically.
    pub mem_aware: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            thread_limit: 128,
            max_wave: 8,
            wave_budget_s: 1.0,
            recovery: RecoveryPolicy::default(),
            default_deadline_s: None,
            wave_pause_ms: 0,
            crash_after_journal_bytes: None,
            resolve: dgc_apps::app_by_name,
            monitor: None,
            mem_aware: true,
        }
    }
}

/// The serve-level metric family handles (cloneable).
#[derive(Clone)]
pub struct ServeMetrics {
    pub queue_depth: Gauge,
    pub admitted: Counter,
    pub rejected: Counter,
    pub retried: Counter,
    pub waves: Counter,
    pub wave_latency: Histogram,
}

impl ServeMetrics {
    pub fn register(reg: &MonitorRegistry) -> ServeMetrics {
        ServeMetrics {
            queue_depth: reg.gauge(
                "dgc_serve_queue_depth",
                "Stream operations waiting in the admission queue",
                &[],
            ),
            admitted: reg.counter(
                "dgc_serve_jobs_admitted",
                "Jobs journaled as submitted",
                &[],
            ),
            rejected: reg.counter(
                "dgc_serve_jobs_rejected",
                "Stream operations refused (queue full, bad request, unknown app)",
                &[],
            ),
            retried: reg.counter(
                "dgc_serve_jobs_retried",
                "Failed jobs re-launched by retry-failed",
                &[],
            ),
            waves: reg.counter("dgc_serve_waves", "Kernel waves launched", &[]),
            wave_latency: reg.histogram(
                "dgc_serve_wave_latency_seconds",
                "Simulated wall time per wave (kernel + recovery overhead)",
                &[],
            ),
        }
    }
}

/// Daemon-side errors. Everything here maps to the unrecoverable exit
/// code (2); *job* failures are data, not errors.
#[derive(Debug)]
pub enum ServeError {
    Journal(JournalError),
    /// A journaled job names an application this build cannot resolve.
    UnknownApp {
        job: String,
        app: String,
    },
    Launch(EnsembleError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::UnknownApp { job, app } => {
                write!(f, "job `{job}` names unknown app `{app}`")
            }
            ServeError::Launch(e) => write!(f, "wave launch failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

impl From<EnsembleError> for ServeError {
    fn from(e: EnsembleError) -> Self {
        ServeError::Launch(e)
    }
}

/// What applying one stream op did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// Newly journaled and pending.
    Admitted,
    /// Known id — idempotent no-op (resubmission on resume).
    Duplicate,
    /// Refused before journaling, with the reason.
    Rejected(String),
    Cancelled,
}

/// What a resume found in the journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeReport {
    pub records: usize,
    pub torn_tail: bool,
    pub committed_waves: usize,
    pub interrupted_waves: usize,
    pub done_jobs: usize,
    pub pending_jobs: usize,
}

/// Aggregate job counts for `status` and the exit contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusSummary {
    pub jobs: usize,
    pub ok: usize,
    pub failed: usize,
    pub cancelled: usize,
    pub pending: usize,
    pub waves: usize,
}

impl StatusSummary {
    /// The serve exit contract: 0 every job succeeded, 1 degraded (any
    /// failed, cancelled or unfinished job). Unrecoverable errors (2)
    /// never reach a summary.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.ok != self.jobs)
    }
}

/// The crash-safe ensemble daemon.
pub struct Daemon {
    cfg: ServeConfig,
    journal: Journal,
    state: ServeState,
    metrics: Option<ServeMetrics>,
    /// Pilot (predicted seconds, peak heap bytes) per distinct
    /// (app, args) — deterministic, so the cache is an optimization only.
    costs: HashMap<(String, Vec<String>), (f64, u64)>,
    /// Simulated backoff accumulated by retry rounds.
    pub backoff_s: f64,
    /// Every job id actually executed (re-executed) by *this* process,
    /// in launch order. The crash-recovery property tests assert that no
    /// job from a committed wave ever reappears here.
    pub executed: Vec<String>,
}

impl Daemon {
    /// Start a fresh daemon: new journal with a schema header.
    pub fn create(journal_path: &Path, cfg: ServeConfig) -> Result<Daemon, ServeError> {
        let journal = Journal::create(journal_path, cfg.crash_after_journal_bytes)?;
        Ok(Daemon::assemble(cfg, journal, ServeState::default()))
    }

    /// Resume from an existing journal: lossy-load (skipping a torn
    /// tail), replay, truncate the tail and reopen for appending.
    pub fn resume(
        journal_path: &Path,
        cfg: ServeConfig,
    ) -> Result<(Daemon, ResumeReport), ServeError> {
        let loaded = crate::journal::load_lossy(journal_path)?;
        let state = ServeState::replay(&loaded.records);
        let journal = Journal::reopen(
            journal_path,
            loaded.valid_bytes,
            cfg.crash_after_journal_bytes,
        )?;
        let report = ResumeReport {
            records: loaded.records.len(),
            torn_tail: loaded.torn_tail,
            committed_waves: state.waves.iter().filter(|w| w.committed()).count(),
            interrupted_waves: state.interrupted().len(),
            done_jobs: state
                .jobs
                .iter()
                .filter(|j| state.result(&j.id).is_some())
                .count(),
            pending_jobs: state.pending().len(),
        };
        Ok((Daemon::assemble(cfg, journal, state), report))
    }

    fn assemble(cfg: ServeConfig, journal: Journal, state: ServeState) -> Daemon {
        let metrics = cfg.monitor.as_deref().map(ServeMetrics::register);
        Daemon {
            cfg,
            journal,
            state,
            metrics,
            costs: HashMap::new(),
            backoff_s: 0.0,
            executed: Vec::new(),
        }
    }

    pub fn metrics(&self) -> Option<&ServeMetrics> {
        self.metrics.as_ref()
    }

    pub fn state(&self) -> &ServeState {
        &self.state
    }

    pub fn journal_bytes(&self) -> u64 {
        self.journal.bytes()
    }

    /// Apply one admission op, journaling write-ahead. Submissions of
    /// unknown apps are rejected *before* the journal sees them, so a
    /// journaled job is always runnable.
    pub fn apply(&mut self, op: &crate::stream::StreamOp) -> Result<Applied, ServeError> {
        use crate::stream::StreamOp;
        match op {
            StreamOp::Submit(spec) => {
                if self.state.contains(&spec.id) {
                    return Ok(Applied::Duplicate);
                }
                if (self.cfg.resolve)(&spec.app).is_none() {
                    if let Some(m) = &self.metrics {
                        m.rejected.inc();
                    }
                    return Ok(Applied::Rejected(format!(
                        "job `{}`: unknown app `{}`",
                        spec.id, spec.app
                    )));
                }
                self.journal.append(&Record::Submitted(spec.clone()))?;
                self.state.admit(spec.clone());
                if let Some(m) = &self.metrics {
                    m.admitted.inc();
                }
                Ok(Applied::Admitted)
            }
            StreamOp::Cancel { job } => {
                self.journal
                    .append(&Record::Cancelled { job: job.clone() })?;
                self.state.cancel(job);
                Ok(Applied::Cancelled)
            }
            StreamOp::Drain => Ok(Applied::Duplicate),
        }
    }

    /// Pilot-predicted (seconds, peak heap bytes) for one job (cached
    /// per distinct workload). Pilot failures predict zero — the wave
    /// run will surface the real error as the job's outcome.
    fn cost_of(&mut self, spec: &JobSpec) -> (f64, u64) {
        let key = (spec.app.clone(), spec.args.clone());
        if let Some(&c) = self.costs.get(&key) {
            return c;
        }
        let c = (self.cfg.resolve)(&spec.app)
            .and_then(|app| {
                let opts = EnsembleOptions {
                    num_instances: 1,
                    thread_limit: self.cfg.thread_limit,
                    ..EnsembleOptions::default()
                };
                InstanceCosts::estimate(
                    &app,
                    std::slice::from_ref(&spec.args),
                    &opts,
                    &GpuSpec::a100_40gb(),
                )
                .ok()
                .map(|costs| (costs.cost(0).seconds_ref, costs.peak_mem_bytes(0)))
            })
            .unwrap_or((0.0, 0));
        self.costs.insert(key, c);
        c
    }

    /// Cap a cost-budgeted wave prefix by device memory: the longest
    /// further prefix whose summed pilot peaks fit the wave device.
    /// Identity when memory-aware mode is off.
    fn mem_cap(&self, peaks: &[u64], take: usize) -> usize {
        if !self.cfg.mem_aware || take == 0 {
            return take;
        }
        let capacity = GpuSpec::a100_40gb().global_mem_bytes;
        take.min(mem_cap_take(
            &peaks[..take.min(peaks.len())],
            capacity,
            take,
        ))
    }

    /// Form the next wave: the head of the pending queue fixes the app
    /// (waves are single-app — one kernel image per launch), membership
    /// is the cost-bounded prefix of that app's pending jobs in
    /// submission order. Pure function of (pending order, cost model):
    /// a resumed daemon re-forms the crashed daemon's exact waves.
    fn form_wave(&mut self) -> Option<Vec<String>> {
        let pending: Vec<JobSpec> = self.state.pending().into_iter().cloned().collect();
        let head_app = pending.first()?.app.clone();
        let candidates: Vec<JobSpec> = pending
            .into_iter()
            .filter(|j| j.app == head_app)
            .take(self.cfg.max_wave as usize)
            .collect();
        let pilots: Vec<(f64, u64)> = candidates.iter().map(|j| self.cost_of(j)).collect();
        let costs: Vec<f64> = pilots.iter().map(|&(s, _)| s).collect();
        let peaks: Vec<u64> = pilots.iter().map(|&(_, p)| p).collect();
        let take = wave_take(&costs, self.cfg.wave_budget_s, self.cfg.max_wave as usize);
        let take = self.mem_cap(&peaks, take);
        Some(candidates[..take].iter().map(|j| j.id.clone()).collect())
    }

    /// Journal `started`, run the wave on a fresh device, group-commit
    /// the `done` records. `skip_done` lists members whose done records
    /// already survived (interrupted-wave replay): they re-execute — the
    /// deterministic simulation reproduces their results bit-for-bit —
    /// but their records are not re-appended.
    fn run_wave(
        &mut self,
        wave: u32,
        attempt: u32,
        ids: &[String],
        skip_done: &[String],
    ) -> Result<(), ServeError> {
        let specs: Vec<JobSpec> = ids
            .iter()
            .map(|id| {
                self.state
                    .spec(id)
                    .cloned()
                    .expect("wave members are journaled jobs")
            })
            .collect();
        let app_name = specs[0].app.clone();
        let app = (self.cfg.resolve)(&app_name).ok_or_else(|| ServeError::UnknownApp {
            job: specs[0].id.clone(),
            app: app_name.clone(),
        })?;

        self.journal.append(&Record::Started {
            wave,
            attempt,
            device: 0,
            jobs: ids.to_vec(),
        })?;
        if self.cfg.wave_pause_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.wave_pause_ms));
        }

        let arg_lines: Vec<Vec<String>> = specs.iter().map(|s| s.args.clone()).collect();
        let opts = EnsembleOptions {
            num_instances: ids.len() as u32,
            thread_limit: self.cfg.thread_limit,
            ..EnsembleOptions::default()
        };
        // One launch attempt per wave: retries are a *journaled*,
        // cross-wave affair (`retry-failed`), so recovery survives the
        // daemon itself dying between attempts.
        let policy = RecoveryPolicy {
            max_attempts: 1,
            ..self.cfg.recovery.clone()
        };
        let mut gpu = Gpu::a100();
        if self.cfg.mem_aware {
            // Waves are already sized to capacity by the pilot peaks;
            // the free-list allocator recycles the per-team churn.
            gpu.mem.set_free_lists(true);
        }
        let mut obs = Recorder::disabled();
        if let Some(reg) = &self.cfg.monitor {
            obs.set_monitor(Arc::clone(reg) as Arc<dyn dgc_obs::MonitorSink>);
        }
        let res = run_ensemble_resilient(
            &mut gpu,
            &app,
            &arg_lines,
            &opts,
            0,
            &FaultPlan::default(),
            &policy,
            &mut obs,
        )?;
        self.executed.extend(ids.iter().cloned());

        let mut dones = Vec::with_capacity(ids.len());
        for (i, spec) in specs.iter().enumerate() {
            let out = &res.ensemble.instances[i];
            let end_s = res.ensemble.instance_end_times_s[i];
            let deadline_s = spec.deadline_s.or(self.cfg.default_deadline_s);
            dones.push(JobDone {
                job: spec.id.clone(),
                wave,
                exit: out.exit_code,
                error: out.error.clone(),
                oom: out.oom,
                timed_out: out.timed_out,
                deadline: deadline_s.is_some_and(|d| end_s > d),
                end_s,
                stdout: res.ensemble.stdout[i].clone(),
            });
        }
        let to_append: Vec<Record> = dones
            .iter()
            .filter(|d| !skip_done.contains(&d.job))
            .cloned()
            .map(Record::Done)
            .collect();
        self.journal.append_batch(&to_append)?;

        // Mirror the journal into the in-memory state (replay-equivalent).
        if let Some(w) = self.state.waves.iter_mut().find(|w| w.wave == wave) {
            w.attempt = attempt;
            w.jobs = ids.to_vec();
            for d in dones {
                w.done.insert(d.job.clone(), d);
            }
        } else {
            let mut done = HashMap::new();
            for d in dones {
                done.insert(d.job.clone(), d);
            }
            self.state.waves.push(crate::state::Wave {
                wave,
                attempt,
                device: 0,
                jobs: ids.to_vec(),
                done,
            });
        }

        if let Some(m) = &self.metrics {
            m.waves.inc();
            m.wave_latency.observe_seconds(res.ensemble.total_time_s);
        }
        Ok(())
    }

    /// Re-execute every interrupted wave with its exact journaled
    /// membership. Must run before any new wave forms.
    pub fn run_interrupted(&mut self) -> Result<usize, ServeError> {
        let waves: Vec<(u32, u32, Vec<String>, Vec<String>)> = self
            .state
            .interrupted()
            .iter()
            .map(|w| {
                (
                    w.wave,
                    w.attempt,
                    w.jobs.clone(),
                    w.done.keys().cloned().collect(),
                )
            })
            .collect();
        for (wave, attempt, jobs, have_done) in &waves {
            self.run_wave(*wave, *attempt, jobs, have_done)?;
        }
        Ok(waves.len())
    }

    /// Form and run one new wave. `Ok(false)` when nothing is pending.
    pub fn run_pending_step(&mut self) -> Result<bool, ServeError> {
        let Some(ids) = self.form_wave() else {
            return Ok(false);
        };
        let wave = self.state.next_wave();
        self.run_wave(wave, 1, &ids, &[])?;
        Ok(true)
    }

    /// Replay interrupted waves, then drain the pending queue.
    pub fn run_to_completion(&mut self) -> Result<(), ServeError> {
        self.run_interrupted()?;
        while self.run_pending_step()? {}
        Ok(())
    }

    /// One `retry-failed` round: re-launch every retryably-failed job
    /// whose attempt count is below the policy's `max_attempts`, in new
    /// waves, paying the policy's (optionally jittered) backoff in
    /// simulated time. Returns the number of jobs re-launched.
    pub fn retry_failed(&mut self) -> Result<usize, ServeError> {
        let eligible: Vec<(JobSpec, u32)> = self
            .state
            .failed_retryable()
            .into_iter()
            .filter(|j| self.state.attempts(&j.id) < self.cfg.recovery.max_attempts)
            .map(|j| (j.clone(), self.state.attempts(&j.id)))
            .collect();
        if eligible.is_empty() {
            return Ok(0);
        }
        // The round's backoff: each job runs its own (jittered) timer
        // keyed by its stable submission index; the shared retry wave
        // launches when the last timer fires.
        let wait = eligible
            .iter()
            .map(|(j, attempts)| {
                let idx = self
                    .state
                    .jobs
                    .iter()
                    .position(|s| s.id == j.id)
                    .unwrap_or(0) as u32;
                self.cfg.recovery.backoff_wait_jittered_s(*attempts, idx)
            })
            .fold(0.0, f64::max);
        self.backoff_s += wait;
        if let Some(m) = &self.metrics {
            m.retried.add(eligible.len() as u64);
        }

        let mut retried = 0usize;
        let mut queue: Vec<(JobSpec, u32)> = eligible;
        while !queue.is_empty() {
            let head_app = queue[0].0.app.clone();
            let mut ids = Vec::new();
            let mut attempt = 0u32;
            let mut costs = Vec::new();
            let mut peaks = Vec::new();
            let mut rest = Vec::new();
            for (spec, attempts) in queue {
                if spec.app == head_app && ids.len() < self.cfg.max_wave as usize {
                    let (s, p) = self.cost_of(&spec);
                    costs.push(s);
                    peaks.push(p);
                    attempt = attempt.max(attempts + 1);
                    ids.push(spec.id);
                } else {
                    rest.push((spec, attempts));
                }
            }
            let take = wave_take(&costs, self.cfg.wave_budget_s, self.cfg.max_wave as usize);
            let take = self.mem_cap(&peaks, take);
            for id in ids.split_off(take) {
                // Over-budget members wait for the next round's wave.
                let spec = self.state.spec(&id).cloned().unwrap();
                let attempts = self.state.attempts(&id);
                rest.push((spec, attempts));
            }
            let wave = self.state.next_wave();
            self.run_wave(wave, attempt, &ids, &[])?;
            retried += ids.len();
            queue = rest;
        }
        Ok(retried)
    }

    /// Aggregate job counts (the `status` subcommand and exit contract).
    pub fn summary(&self) -> StatusSummary {
        let mut s = StatusSummary {
            jobs: self.state.jobs.len(),
            waves: self.state.waves.len(),
            ..StatusSummary::default()
        };
        for j in &self.state.jobs {
            match self.state.phase(&j.id) {
                Some(JobPhase::Done(d)) if d.succeeded() => s.ok += 1,
                Some(JobPhase::Done(_)) => s.failed += 1,
                Some(JobPhase::Cancelled) => s.cancelled += 1,
                _ => s.pending += 1,
            }
        }
        s
    }

    /// The merged results document: one canonical JSON line per job in
    /// submission order, derived purely from journaled state — which is
    /// exactly why `resume` reproduces it byte-for-byte.
    pub fn merged_results(&self) -> String {
        use serde::Value;
        let mut out = String::from("# dgc-serve results v1\n");
        for j in &self.state.jobs {
            let phase = self.state.phase(&j.id);
            let mut fields: Vec<(String, Value)> = vec![
                ("job".into(), Value::Str(j.id.clone())),
                ("app".into(), Value::Str(j.app.clone())),
            ];
            match phase {
                Some(JobPhase::Done(d)) => {
                    let status = if d.succeeded() { "ok" } else { "failed" };
                    fields.push(("status".into(), Value::Str(status.into())));
                    fields.push((
                        "exit".into(),
                        match d.exit {
                            Some(c) if c >= 0 => Value::U64(c as u64),
                            Some(c) => Value::I64(i64::from(c)),
                            None => Value::Null,
                        },
                    ));
                    fields.push((
                        "error".into(),
                        match &d.error {
                            Some(e) => Value::Str(e.clone()),
                            None => Value::Null,
                        },
                    ));
                    fields.push(("oom".into(), Value::Bool(d.oom)));
                    fields.push(("timed_out".into(), Value::Bool(d.timed_out)));
                    fields.push(("deadline".into(), Value::Bool(d.deadline)));
                    fields.push(("wave".into(), Value::U64(u64::from(d.wave))));
                    fields.push((
                        "attempts".into(),
                        Value::U64(u64::from(self.state.attempts(&j.id))),
                    ));
                    fields.push(("end_s".into(), Value::F64(d.end_s)));
                    fields.push(("stdout".into(), Value::Str(d.stdout.clone())));
                }
                Some(JobPhase::Cancelled) => {
                    fields.push(("status".into(), Value::Str("cancelled".into())));
                }
                _ => {
                    fields.push(("status".into(), Value::Str("pending".into())));
                }
            }
            let line = serde_json::to_string(&Value::Object(fields))
                .expect("results rows always serialize");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}
