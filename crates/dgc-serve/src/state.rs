//! Journal replay: rebuild the daemon's state from the record stream.
//!
//! The unit of commitment is the **wave**: membership is journaled
//! atomically in one `started` record, and the wave's `done` records
//! are group-committed in one write. A wave therefore counts as
//! committed only when *every* member has a done record — anything
//! less means the crash landed mid-commit, and the whole wave is
//! re-executed on resume with its exact journaled membership (the
//! simulation is deterministic, so the re-run reproduces the same
//! results bit for bit, including for members whose done records did
//! survive the tear).

use crate::journal::{JobDone, JobSpec, Record};
use std::collections::HashMap;

/// A journaled wave: membership plus however many done records made it
/// to disk.
#[derive(Debug, Clone)]
pub struct Wave {
    pub wave: u32,
    pub attempt: u32,
    pub device: u32,
    pub jobs: Vec<String>,
    /// Done records by job id; committed iff every member is present.
    pub done: HashMap<String, JobDone>,
}

impl Wave {
    /// All members have journaled done records: the group commit
    /// finished, nothing in this wave ever re-executes.
    pub fn committed(&self) -> bool {
        self.jobs.iter().all(|j| self.done.contains_key(j))
    }
}

/// Where a job stands after replay.
#[derive(Debug, Clone, PartialEq)]
pub enum JobPhase {
    /// Submitted, not cancelled, no committed result yet.
    Pending,
    /// Cancelled before a committed result.
    Cancelled,
    /// Has a result from a committed wave (the latest one wins).
    Done(JobDone),
}

/// Replayed daemon state.
#[derive(Debug, Default)]
pub struct ServeState {
    /// Job specs in submission order — the canonical job order for wave
    /// formation and the merged results file.
    pub jobs: Vec<JobSpec>,
    index: HashMap<String, usize>,
    cancelled: HashMap<String, bool>,
    /// Waves in journal order.
    pub waves: Vec<Wave>,
}

impl ServeState {
    /// Replay a record stream (header excluded or included — headers are
    /// ignored here; `load_lossy` already validated them).
    pub fn replay(records: &[Record]) -> ServeState {
        let mut st = ServeState::default();
        for rec in records {
            match rec {
                Record::Header { .. } => {}
                Record::Submitted(spec) => {
                    st.admit(spec.clone());
                }
                Record::Started {
                    wave,
                    attempt,
                    device,
                    jobs,
                } => {
                    // A re-executed wave re-journals `started` under the
                    // same wave number; the latest membership wins (it
                    // is identical by construction).
                    if let Some(w) = st.waves.iter_mut().find(|w| w.wave == *wave) {
                        w.attempt = *attempt;
                        w.device = *device;
                        w.jobs = jobs.clone();
                    } else {
                        st.waves.push(Wave {
                            wave: *wave,
                            attempt: *attempt,
                            device: *device,
                            jobs: jobs.clone(),
                            done: HashMap::new(),
                        });
                    }
                }
                Record::Done(d) => {
                    if let Some(w) = st.waves.iter_mut().find(|w| w.wave == d.wave) {
                        w.done.insert(d.job.clone(), d.clone());
                    }
                    // A done record for an unknown wave would mean the
                    // started record tore *after* its dones — impossible
                    // under append ordering; ignore defensively.
                }
                Record::Cancelled { job } => {
                    st.cancelled.insert(job.clone(), true);
                }
            }
        }
        st
    }

    /// Register a submitted job. Idempotent by id: re-submission of a
    /// known id (a resumed daemon re-reading its job stream) is a no-op.
    /// Returns whether the job was new.
    pub fn admit(&mut self, spec: JobSpec) -> bool {
        if self.index.contains_key(&spec.id) {
            return false;
        }
        self.index.insert(spec.id.clone(), self.jobs.len());
        self.jobs.push(spec);
        true
    }

    pub fn contains(&self, id: &str) -> bool {
        self.index.contains_key(id)
    }

    pub fn spec(&self, id: &str) -> Option<&JobSpec> {
        self.index.get(id).map(|&i| &self.jobs[i])
    }

    pub fn cancel(&mut self, id: &str) {
        self.cancelled.insert(id.to_string(), true);
    }

    pub fn is_cancelled(&self, id: &str) -> bool {
        self.cancelled.get(id).copied().unwrap_or(false)
    }

    /// The latest committed result for `id`, if any. Only fully
    /// committed waves count; later waves (retries) shadow earlier ones.
    pub fn result(&self, id: &str) -> Option<&JobDone> {
        self.waves
            .iter()
            .rev()
            .filter(|w| w.committed())
            .find_map(|w| w.done.get(id))
    }

    /// Launch attempts already journaled for `id` (committed or not).
    pub fn attempts(&self, id: &str) -> u32 {
        self.waves
            .iter()
            .filter(|w| w.jobs.iter().any(|j| j == id))
            .count() as u32
    }

    pub fn phase(&self, id: &str) -> Option<JobPhase> {
        if !self.contains(id) {
            return None;
        }
        if let Some(d) = self.result(id) {
            return Some(JobPhase::Done(d.clone()));
        }
        if self.is_cancelled(id) {
            return Some(JobPhase::Cancelled);
        }
        Some(JobPhase::Pending)
    }

    /// Interrupted waves, journal order: membership journaled but the
    /// done group-commit incomplete. These re-execute with their exact
    /// journaled membership before any new wave forms.
    pub fn interrupted(&self) -> Vec<&Wave> {
        self.waves.iter().filter(|w| !w.committed()).collect()
    }

    /// Jobs with no committed result, not cancelled, and not claimed by
    /// an interrupted wave — submission order. These are what new waves
    /// form over.
    pub fn pending(&self) -> Vec<&JobSpec> {
        let claimed: std::collections::HashSet<&str> = self
            .interrupted()
            .iter()
            .flat_map(|w| w.jobs.iter().map(String::as_str))
            .collect();
        self.jobs
            .iter()
            .filter(|j| {
                self.result(&j.id).is_none()
                    && !self.is_cancelled(&j.id)
                    && !claimed.contains(j.id.as_str())
            })
            .collect()
    }

    /// Next unused wave number.
    pub fn next_wave(&self) -> u32 {
        self.waves.iter().map(|w| w.wave + 1).max().unwrap_or(0)
    }

    /// Jobs whose latest committed result is a retryable failure
    /// (infra error — trap, OOM, watchdog — not a deterministic
    /// non-zero exit or missed deadline), submission order.
    pub fn failed_retryable(&self) -> Vec<&JobSpec> {
        self.jobs
            .iter()
            .filter(|j| self.result(&j.id).map(|d| d.retryable()).unwrap_or(false))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            app: "a".into(),
            args: vec![],
            deadline_s: None,
        }
    }

    fn done(id: &str, wave: u32) -> Record {
        Record::Done(JobDone {
            job: id.into(),
            wave,
            exit: Some(0),
            error: None,
            oom: false,
            timed_out: false,
            deadline: false,
            end_s: 0.1,
            stdout: String::new(),
        })
    }

    fn started(wave: u32, jobs: &[&str]) -> Record {
        Record::Started {
            wave,
            attempt: 1,
            device: 0,
            jobs: jobs.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn a_wave_missing_one_done_record_is_not_committed() {
        let st = ServeState::replay(&[
            Record::Submitted(spec("a")),
            Record::Submitted(spec("b")),
            started(0, &["a", "b"]),
            done("a", 0),
            // b's done record tore off.
        ]);
        assert_eq!(st.interrupted().len(), 1);
        assert!(
            st.result("a").is_none(),
            "half-committed wave must not count"
        );
        assert!(st.pending().is_empty(), "interrupted members are claimed");
        let st2 = ServeState::replay(&[
            Record::Submitted(spec("a")),
            Record::Submitted(spec("b")),
            started(0, &["a", "b"]),
            done("a", 0),
            done("b", 0),
        ]);
        assert!(st2.interrupted().is_empty());
        assert!(st2.result("a").is_some() && st2.result("b").is_some());
    }

    #[test]
    fn resubmission_is_idempotent_and_order_preserving() {
        let mut st =
            ServeState::replay(&[Record::Submitted(spec("a")), Record::Submitted(spec("b"))]);
        assert!(!st.admit(spec("a")));
        assert!(st.admit(spec("c")));
        let ids: Vec<&str> = st.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c"]);
    }

    #[test]
    fn later_committed_wave_shadows_earlier_result() {
        let mut fail = JobDone {
            job: "a".into(),
            wave: 0,
            exit: None,
            error: Some("trap".into()),
            oom: false,
            timed_out: false,
            deadline: false,
            end_s: 0.1,
            stdout: String::new(),
        };
        let st = ServeState::replay(&[
            Record::Submitted(spec("a")),
            started(0, &["a"]),
            Record::Done(fail.clone()),
            started(1, &["a"]),
            {
                fail.wave = 1;
                fail.error = None;
                fail.exit = Some(0);
                done("a", 1)
            },
        ]);
        let r = st.result("a").unwrap();
        assert_eq!(r.wave, 1);
        assert!(r.succeeded());
        assert_eq!(st.attempts("a"), 2);
        assert!(st.failed_retryable().is_empty());
    }

    #[test]
    fn cancelled_jobs_leave_pending_but_done_wins_over_cancel() {
        let st = ServeState::replay(&[
            Record::Submitted(spec("a")),
            Record::Submitted(spec("b")),
            Record::Cancelled { job: "a".into() },
            started(0, &["b"]),
            done("b", 0),
            Record::Cancelled { job: "b".into() },
        ]);
        assert_eq!(st.phase("a"), Some(JobPhase::Cancelled));
        assert!(matches!(st.phase("b"), Some(JobPhase::Done(_))));
        assert!(st.pending().is_empty());
        assert_eq!(st.phase("zz"), None);
    }

    #[test]
    fn replayed_started_record_updates_in_place() {
        let st = ServeState::replay(&[
            Record::Submitted(spec("a")),
            started(0, &["a"]),
            // Resume re-journals the same wave before re-running it.
            started(0, &["a"]),
            done("a", 0),
        ]);
        assert_eq!(st.waves.len(), 1);
        assert!(st.waves[0].committed());
        assert_eq!(st.next_wave(), 1);
    }
}
