//! `dgc-serve` — the crash-safe ensemble daemon CLI.
//!
//! ```text
//! dgc-serve run          --journal J (--jobs F | --stdin | --watch F) [--results R] [opts]
//! dgc-serve resume       --journal J [--jobs F] [--results R] [opts]
//! dgc-serve retry-failed --journal J [--results R] [opts]
//! dgc-serve status       --journal J
//! ```
//!
//! Exit contract: `0` every job succeeded (or a clean graceful drain),
//! `1` degraded — some job failed, missed its deadline, was cancelled
//! or never ran, `2` unrecoverable — corrupt journal, I/O error, bad
//! usage.

use dgc_serve::{
    signals, AdmissionMode, AdmissionQueue, Applied, Daemon, PushError, ServeConfig, ServeError,
    StreamOp,
};
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: dgc-serve <run|resume|retry-failed|status> --journal <file>\n\
  run          --jobs <file> | --stdin | --watch <file>   streaming admission source\n\
  common       [--results <file>] [--max-wave <n>] [--wave-budget-s <s>]\n\
               [--queue-cap <n>] [--admission block|reject] [--thread-limit <n>]\n\
               [--max-attempts <n>] [--retry-jitter <seed>] [--deadline-s <s>]\n\
               [--monitor-out <file>] [--monitor-interval <ms>]\n\
               [--wave-pause-ms <ms>] [--crash-after-journal-bytes <n>]\n\
               [--mem-aware|--no-mem-aware] [--quiet]";

enum Source {
    File(PathBuf),
    Stdin,
    Watch(PathBuf),
}

struct Cli {
    cmd: String,
    journal: PathBuf,
    source: Option<Source>,
    results: Option<PathBuf>,
    queue_cap: usize,
    admission: AdmissionMode,
    monitor_out: Option<PathBuf>,
    monitor_interval_ms: u64,
    quiet: bool,
    cfg: ServeConfig,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let cmd = args.first().ok_or("missing subcommand")?.clone();
    if !matches!(cmd.as_str(), "run" | "resume" | "retry-failed" | "status") {
        return Err(format!("unknown subcommand `{cmd}`"));
    }
    let mut cli = Cli {
        cmd,
        journal: PathBuf::new(),
        source: None,
        results: None,
        queue_cap: 64,
        admission: AdmissionMode::Block,
        monitor_out: None,
        monitor_interval_ms: 250,
        quiet: false,
        cfg: ServeConfig::default(),
    };
    let mut it = args[1..].iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--journal" => cli.journal = PathBuf::from(need(&mut it, a)?),
            "--jobs" => cli.source = Some(Source::File(PathBuf::from(need(&mut it, a)?))),
            "--stdin" => cli.source = Some(Source::Stdin),
            "--watch" => cli.source = Some(Source::Watch(PathBuf::from(need(&mut it, a)?))),
            "--results" => cli.results = Some(PathBuf::from(need(&mut it, a)?)),
            "--max-wave" => {
                cli.cfg.max_wave = need(&mut it, a)?.parse().map_err(|_| "bad --max-wave")?
            }
            "--wave-budget-s" => {
                cli.cfg.wave_budget_s = need(&mut it, a)?
                    .parse()
                    .map_err(|_| "bad --wave-budget-s")?
            }
            "--queue-cap" => {
                cli.queue_cap = need(&mut it, a)?.parse().map_err(|_| "bad --queue-cap")?
            }
            "--admission" => cli.admission = need(&mut it, a)?.parse()?,
            "--thread-limit" => {
                cli.cfg.thread_limit = need(&mut it, a)?
                    .parse()
                    .map_err(|_| "bad --thread-limit")?
            }
            "--max-attempts" => {
                cli.cfg.recovery.max_attempts = need(&mut it, a)?
                    .parse()
                    .map_err(|_| "bad --max-attempts")?
            }
            "--retry-jitter" => {
                cli.cfg.recovery.jitter_seed = Some(
                    need(&mut it, a)?
                        .parse()
                        .map_err(|_| "bad --retry-jitter")?,
                )
            }
            "--deadline-s" => {
                cli.cfg.default_deadline_s =
                    Some(need(&mut it, a)?.parse().map_err(|_| "bad --deadline-s")?)
            }
            "--monitor-out" => cli.monitor_out = Some(PathBuf::from(need(&mut it, a)?)),
            "--monitor-interval" => {
                cli.monitor_interval_ms = need(&mut it, a)?
                    .parse()
                    .map_err(|_| "bad --monitor-interval")?
            }
            "--wave-pause-ms" => {
                cli.cfg.wave_pause_ms = need(&mut it, a)?
                    .parse()
                    .map_err(|_| "bad --wave-pause-ms")?
            }
            "--crash-after-journal-bytes" => {
                cli.cfg.crash_after_journal_bytes = Some(
                    need(&mut it, a)?
                        .parse()
                        .map_err(|_| "bad --crash-after-journal-bytes")?,
                )
            }
            "--mem-aware" => cli.cfg.mem_aware = true,
            "--no-mem-aware" => cli.cfg.mem_aware = false,
            "--quiet" => cli.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.journal.as_os_str().is_empty() {
        return Err("--journal is required".into());
    }
    if cli.cmd == "run" && cli.source.is_none() {
        return Err("run needs a job source: --jobs, --stdin or --watch".into());
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("dgc-serve: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    match dispatch(cli) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("dgc-serve: {e}");
            std::process::exit(2);
        }
    }
}

fn dispatch(mut cli: Cli) -> Result<i32, ServeError> {
    signals::install();
    let registry = cli
        .monitor_out
        .is_some()
        .then(|| Arc::new(dgc_monitor::MonitorRegistry::new()));
    cli.cfg.monitor = registry.clone();
    let writer = match (&registry, &cli.monitor_out) {
        (Some(reg), Some(path)) => Some(
            dgc_monitor::MonitorWriter::spawn(
                Arc::clone(reg),
                path.clone(),
                Duration::from_millis(cli.monitor_interval_ms.max(1)),
            )
            .map_err(dgc_serve::JournalError::Io)?,
        ),
        _ => None,
    };

    let code = match cli.cmd.as_str() {
        "run" => {
            let daemon = Daemon::create(&cli.journal, cli.cfg.clone())?;
            pump(daemon, &cli)?
        }
        "resume" => {
            let (mut daemon, report) = Daemon::resume(&cli.journal, cli.cfg.clone())?;
            if !cli.quiet {
                eprintln!(
                    "dgc-serve: resume: {} records{}, {} committed wave(s), {} interrupted, {} done job(s), {} pending",
                    report.records,
                    if report.torn_tail { " (torn tail skipped)" } else { "" },
                    report.committed_waves,
                    report.interrupted_waves,
                    report.done_jobs,
                    report.pending_jobs,
                );
            }
            // Re-admit the job stream (idempotent by id): submissions
            // whose journal records tore off in the crash re-enter here.
            daemon.run_interrupted()?;
            pump(daemon, &cli)?
        }
        "retry-failed" => {
            let (mut daemon, _) = Daemon::resume(&cli.journal, cli.cfg.clone())?;
            daemon.run_interrupted()?;
            let n = daemon.retry_failed()?;
            if !cli.quiet {
                eprintln!(
                    "dgc-serve: retried {n} job(s), backoff {:.4}s",
                    daemon.backoff_s
                );
            }
            finish(&daemon, &cli)?
        }
        "status" => {
            let (daemon, report) = Daemon::resume(&cli.journal, cli.cfg.clone())?;
            let s = daemon.summary();
            println!(
                "journal: {} records{} | waves: {} ({} interrupted) | jobs: {} ok={} failed={} cancelled={} pending={}",
                report.records,
                if report.torn_tail { " (torn tail)" } else { "" },
                s.waves,
                report.interrupted_waves,
                s.jobs,
                s.ok,
                s.failed,
                s.cancelled,
                s.pending,
            );
            0
        }
        _ => unreachable!("parse_cli validated the subcommand"),
    };
    if let Some(w) = writer {
        w.stop().map_err(dgc_serve::JournalError::Io)?;
    }
    Ok(code)
}

/// The admission + wave pump shared by `run` and `resume`: a reader
/// side feeds the bounded queue while this thread journals admissions
/// and runs waves — streaming admission overlaps in-flight waves.
fn pump(mut daemon: Daemon, cli: &Cli) -> Result<i32, ServeError> {
    let queue = Arc::new(AdmissionQueue::new(cli.queue_cap, cli.admission));
    let reader = match &cli.source {
        None => None,
        Some(Source::File(path)) => {
            // File mode is fully deterministic: every op is applied
            // before the first wave forms (no queue race), which is what
            // makes `run --jobs F` vs `resume --jobs F` byte-comparable.
            // A malformed line in a job file is a usage error (exit 2),
            // not a per-op reject.
            let text = std::fs::read_to_string(path).map_err(dgc_serve::JournalError::Io)?;
            let mut ops = dgc_serve::parse_ops(&text).map_err(|e| {
                ServeError::Journal(dgc_serve::JournalError::BadHeader(format!(
                    "job file {}: {e}",
                    path.display()
                )))
            })?;
            // Ops after an explicit drain never admit.
            if let Some(cut) = ops.iter().position(|op| matches!(op, StreamOp::Drain)) {
                ops.truncate(cut);
            }
            drain_ops(&mut daemon, &ops, cli)?;
            queue.close();
            None
        }
        Some(Source::Stdin) => {
            let q = Arc::clone(&queue);
            let quiet = cli.quiet;
            Some(std::thread::spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    let Ok(line) = line else { break };
                    if !feed_line(&q, &line, quiet) {
                        break;
                    }
                }
                q.close();
            }))
        }
        Some(Source::Watch(path)) => {
            let q = Arc::clone(&queue);
            let path = path.clone();
            let quiet = cli.quiet;
            Some(std::thread::spawn(move || {
                // Tail the watch file: poll for appended bytes, feed
                // complete lines, stop on a drain op or termination.
                let mut offset = 0u64;
                let mut buf = String::new();
                loop {
                    if signals::drain_requested() {
                        break;
                    }
                    let Ok(text) = std::fs::read_to_string(&path) else {
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    let fresh = &text.as_bytes()[(offset as usize).min(text.len())..];
                    buf.push_str(&String::from_utf8_lossy(fresh));
                    offset = text.len() as u64;
                    let mut drained = false;
                    while let Some(nl) = buf.find('\n') {
                        let line: String = buf.drain(..=nl).collect();
                        if !feed_line(&q, line.trim_end(), quiet) {
                            drained = true;
                            break;
                        }
                    }
                    if drained {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                q.close();
            }))
        }
    };

    let mut draining = false;
    let mut source_done = cli.source.is_none();
    loop {
        if signals::abort_requested() {
            if !cli.quiet {
                eprintln!("dgc-serve: hard abort (second signal); journal is consistent, resume to continue");
            }
            queue.close();
            if let Some(h) = reader {
                let _ = h.join();
            }
            return Ok(1);
        }
        if signals::drain_requested() {
            draining = true;
        }

        let (ops, closed) = if source_done || draining {
            (queue.drain_now(), true)
        } else {
            queue.drain_wait(Duration::from_millis(25))
        };
        source_done |= closed;
        if drain_ops(&mut daemon, &ops, cli)? {
            draining = true;
        }
        if let Some(m) = daemon.metrics() {
            m.queue_depth.set(queue.depth() as f64);
        }

        let ran = daemon.run_pending_step()?;
        if !ran && (source_done || draining) && queue.depth() == 0 {
            break;
        }
    }
    queue.close();
    if let Some(h) = reader {
        let _ = h.join();
    }

    let code = finish(&daemon, cli)?;
    // A graceful drain that completed every *attempted* job is a clean
    // exit: jobs still pending because the operator stopped early are
    // not a degradation.
    if draining && code == 1 && daemon.summary().failed == 0 && daemon.summary().cancelled == 0 {
        return Ok(0);
    }
    Ok(code)
}

/// Apply a batch of ops. Returns whether a drain op was seen.
fn drain_ops(daemon: &mut Daemon, ops: &[StreamOp], cli: &Cli) -> Result<bool, ServeError> {
    let mut drain = false;
    for op in ops {
        if matches!(op, StreamOp::Drain) {
            drain = true;
            continue;
        }
        if let Applied::Rejected(reason) = daemon.apply(op)? {
            if !cli.quiet {
                eprintln!("dgc-serve: rejected: {reason}");
            }
        }
    }
    Ok(drain)
}

/// Reader-side line handling: parse, push, report rejects. Returns
/// `false` once a drain op ends the stream.
fn feed_line(q: &AdmissionQueue, line: &str, quiet: bool) -> bool {
    match dgc_serve::parse_op(line) {
        Ok(None) => true,
        Ok(Some(op)) => {
            let is_drain = matches!(op, StreamOp::Drain);
            match q.push(op) {
                Ok(()) => {}
                Err(PushError::Full { .. }) => {
                    if !quiet {
                        eprintln!("dgc-serve: rejected: queue full: {line}");
                    }
                }
                Err(PushError::Closed) => return false,
            }
            !is_drain
        }
        Err(e) => {
            if !quiet {
                eprintln!("dgc-serve: rejected: {e}: {line}");
            }
            true
        }
    }
}

/// Write results (crash-atomically) and report the summary exit code.
fn finish(daemon: &Daemon, cli: &Cli) -> Result<i32, ServeError> {
    if let Some(path) = &cli.results {
        dgc_obs::write_atomic(path, daemon.merged_results())
            .map_err(dgc_serve::JournalError::Io)?;
    }
    let s = daemon.summary();
    if !cli.quiet {
        eprintln!(
            "dgc-serve: {} job(s): ok={} failed={} cancelled={} pending={} | {} wave(s), journal {} bytes",
            s.jobs,
            s.ok,
            s.failed,
            s.cancelled,
            s.pending,
            s.waves,
            daemon.journal_bytes(),
        );
    }
    Ok(s.exit_code())
}
