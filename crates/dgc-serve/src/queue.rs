//! The bounded admission queue between the request reader and the wave
//! pump.
//!
//! Streaming admission runs on its own thread (stdin/FIFO/watch-file
//! reader) while the pump journals and runs waves — that overlap *is*
//! the continuous-batching window. The queue bounds how far admission
//! can run ahead of execution; at the cap the configured
//! [`AdmissionMode`] decides between **backpressure** (block the reader
//! until the pump drains — the FIFO fills and upstream writers stall,
//! like a Unix pipe) and **load-shedding** (reject with a reason the
//! reader can report; the job never reaches the journal).

use crate::stream::StreamOp;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Full-queue policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Block the submitter until space frees (backpressure).
    #[default]
    Block,
    /// Refuse the op with a reason (load-shedding).
    Reject,
}

impl std::str::FromStr for AdmissionMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(AdmissionMode::Block),
            "reject" => Ok(AdmissionMode::Reject),
            other => Err(format!("unknown admission mode `{other}` (block|reject)")),
        }
    }
}

/// Why a push did not enqueue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// Reject mode, queue at capacity.
    Full { cap: usize },
    /// The queue was closed (daemon draining); nothing further admits.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { cap } => write!(f, "queue full ({cap} ops), admission=reject"),
            PushError::Closed => write!(f, "queue closed (draining)"),
        }
    }
}

#[derive(Default)]
struct Inner {
    ops: VecDeque<StreamOp>,
    closed: bool,
}

/// MPSC bounded queue: many submitters, one pump.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    /// Signalled when ops arrive or the queue closes (pump waits here).
    ready: Condvar,
    /// Signalled when space frees (blocked submitters wait here).
    space: Condvar,
    cap: usize,
    mode: AdmissionMode,
}

impl AdmissionQueue {
    pub fn new(cap: usize, mode: AdmissionMode) -> AdmissionQueue {
        AdmissionQueue {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap: cap.max(1),
            mode,
        }
    }

    /// Offer one op. Blocks (mode `Block`) or fails (`Reject`) at the
    /// cap; fails once the queue is closed.
    pub fn push(&self, op: StreamOp) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.ops.len() < self.cap {
                inner.ops.push_back(op);
                self.ready.notify_one();
                return Ok(());
            }
            match self.mode {
                AdmissionMode::Reject => return Err(PushError::Full { cap: self.cap }),
                AdmissionMode::Block => inner = self.space.wait(inner).unwrap(),
            }
        }
    }

    /// Drain everything queued right now without blocking.
    pub fn drain_now(&self) -> Vec<StreamOp> {
        let mut inner = self.inner.lock().unwrap();
        let ops: Vec<StreamOp> = inner.ops.drain(..).collect();
        if !ops.is_empty() {
            self.space.notify_all();
        }
        ops
    }

    /// Wait up to `timeout` for at least one op (or close), then drain.
    /// Returns `(ops, closed)`.
    pub fn drain_wait(&self, timeout: std::time::Duration) -> (Vec<StreamOp>, bool) {
        let mut inner = self.inner.lock().unwrap();
        if inner.ops.is_empty() && !inner.closed {
            let (guard, _timeout) = self.ready.wait_timeout(inner, timeout).unwrap();
            inner = guard;
        }
        let ops: Vec<StreamOp> = inner.ops.drain(..).collect();
        if !ops.is_empty() {
            self.space.notify_all();
        }
        (ops, inner.closed)
    }

    /// Ops currently queued (the monitor's queue-depth gauge).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().ops.len()
    }

    /// Close the queue: subsequent pushes fail, waiting submitters and
    /// the pump wake.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn cancel(id: &str) -> StreamOp {
        StreamOp::Cancel { job: id.into() }
    }

    #[test]
    fn reject_mode_sheds_load_at_the_cap() {
        let q = AdmissionQueue::new(2, AdmissionMode::Reject);
        q.push(cancel("a")).unwrap();
        q.push(cancel("b")).unwrap();
        assert_eq!(q.push(cancel("c")), Err(PushError::Full { cap: 2 }));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.drain_now().len(), 2);
        q.push(cancel("c")).unwrap();
        q.close();
        assert_eq!(q.push(cancel("d")), Err(PushError::Closed));
    }

    #[test]
    fn block_mode_applies_backpressure_until_the_pump_drains() {
        let q = Arc::new(AdmissionQueue::new(1, AdmissionMode::Block));
        q.push(cancel("a")).unwrap();
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.push(cancel("b")));
        // The submitter is stuck on the full queue until we drain.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.drain_now(), vec![cancel("a")]);
        submitter.join().unwrap().unwrap();
        let (ops, closed) = q.drain_wait(Duration::from_millis(200));
        assert_eq!(ops, vec![cancel("b")]);
        assert!(!closed);
    }

    #[test]
    fn drain_wait_wakes_on_close() {
        let q = Arc::new(AdmissionQueue::new(4, AdmissionMode::Block));
        let q2 = Arc::clone(&q);
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.close();
        });
        let (ops, closed) = q.drain_wait(Duration::from_secs(5));
        assert!(ops.is_empty());
        assert!(closed);
        closer.join().unwrap();
    }
}
