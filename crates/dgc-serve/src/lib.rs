//! dgc-serve: the crash-safe ensemble daemon.
//!
//! The batch drivers (`ensemble-cli`, `dgc-sched`) answer "run this
//! argument file once". This crate answers "keep accepting jobs and
//! never lose one": a long-lived daemon whose single source of truth is
//! an append-only, fsync'd, CRC-framed **write-ahead job journal** —
//! `kill -9` at any byte boundary loses at most a torn trailing record,
//! and `dgc-serve resume` replays the journal, re-runs only unfinished
//! work, and produces results **byte-identical** to an uninterrupted
//! run (property-tested across crash points).
//!
//! * [`journal`] — schema-1 records (`header`/`submitted`/`started`/
//!   `done`/`cancelled`), CRC-32 framing, fsync'd appends, group commit,
//!   lossy load.
//! * [`state`] — journal replay; the wave is the commit unit.
//! * [`stream`] — JSONL admission protocol (submit/cancel/drain),
//!   sharing the argument-file tokenizer with `ensemble-cli`.
//! * [`queue`] — bounded admission queue: block (backpressure) or
//!   reject (load-shedding) at the cap.
//! * [`daemon`] — continuous batching into cost-model-sized kernel
//!   waves, per-job deadlines, crash recovery, `retry-failed` with the
//!   `dgc-fault` backoff policy, live `dgc-monitor` metrics.
//! * [`signals`] — SIGTERM: graceful drain, then hard abort.

pub mod daemon;
pub mod journal;
pub mod queue;
pub mod signals;
pub mod state;
pub mod stream;

pub use daemon::{
    AppResolver, Applied, Daemon, ResumeReport, ServeConfig, ServeError, ServeMetrics,
    StatusSummary,
};
pub use journal::{
    crc32, frame, load_lossy, unframe, JobDone, JobSpec, Journal, JournalError, Record, SCHEMA,
};
pub use queue::{AdmissionMode, AdmissionQueue, PushError};
pub use state::{JobPhase, ServeState, Wave};
pub use stream::{parse_op, parse_ops, StreamOp};
