//! SIGTERM/SIGINT handling for graceful drain, without a signal crate.
//!
//! The daemon's shutdown contract:
//!
//! * **first** SIGTERM/SIGINT — graceful drain: stop admitting, finish
//!   the in-flight wave, journal it, write results, exit 0;
//! * **second** — hard abort: exit immediately. The journal stays
//!   consistent by construction (every append is CRC-framed and
//!   fsync'd), so a later `resume` picks up exactly where the abort
//!   landed — that is the whole point of the write-ahead design.
//!
//! `std` exposes no signal API and the workspace is offline (no `libc`
//! crate), so on Unix this registers a minimal handler through the C
//! `signal(2)` entry point directly. The handler only bumps an atomic —
//! async-signal-safe — and the pump polls it between waves. On other
//! platforms installation is a no-op and the daemon only stops on
//! drain/EOF.

use std::sync::atomic::{AtomicU32, Ordering};

static TERMS: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
mod imp {
    use super::TERMS;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERMS.fetch_add(1, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT handler (idempotent).
pub fn install() {
    imp::install();
}

/// At least one termination signal arrived: drain gracefully.
pub fn drain_requested() -> bool {
    TERMS.load(Ordering::SeqCst) >= 1
}

/// A second signal arrived: stop now.
pub fn abort_requested() -> bool {
    TERMS.load(Ordering::SeqCst) >= 2
}

/// Test hook: simulate signal delivery.
#[doc(hidden)]
pub fn inject_for_tests(count: u32) {
    TERMS.store(count, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_ladder() {
        inject_for_tests(0);
        install();
        assert!(!drain_requested() && !abort_requested());
        inject_for_tests(1);
        assert!(drain_requested() && !abort_requested());
        inject_for_tests(2);
        assert!(abort_requested());
        inject_for_tests(0);
    }

    #[cfg(unix)]
    #[test]
    fn a_real_signal_lands_in_the_counter() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        inject_for_tests(0);
        install();
        unsafe {
            raise(15);
        }
        assert!(drain_requested());
        inject_for_tests(0);
    }
}
