//! The write-ahead job journal (`jobs.jsonl`, schema 1).
//!
//! The daemon's single source of truth is an append-only journal of
//! CRC-framed JSON records. Every record is one line:
//!
//! ```text
//! J1 <crc32hex8> <payload-json>\n
//! ```
//!
//! where the CRC-32 (IEEE, the zlib polynomial) covers exactly the
//! payload bytes. Appends are `fsync`'d, so after a `kill -9` the file
//! on disk is a *byte prefix* of what the daemon wrote — the only
//! damage a crash can do is a torn final line, which the checksum
//! detects and [`load_lossy`] skips (the same discipline as
//! `dgc-insight`'s perf ledger). A bad line *before* intact ones is not
//! a crash artifact but real corruption, and loading fails hard.
//!
//! Schema 1 records (`rec` discriminator):
//!
//! * `header`    — `{"rec":"header","schema":1}`, first line of every journal.
//! * `submitted` — `{"rec":"submitted","job","app","args":[…],"deadline_s"?}`
//! * `started`   — `{"rec":"started","wave","attempt","device","jobs":[…]}`;
//!   one record carries the *entire* wave membership, so membership is
//!   atomic: it is either journaled completely or not at all.
//! * `done`      — `{"rec":"done","job","wave","exit"?,"error"?,"oom",
//!   "timed_out","deadline","end_s","stdout"}`; a wave's done records
//!   are appended in **one** write + fsync (group commit).
//! * `cancelled` — `{"rec":"cancelled","job"}`
//!
//! Timestamps are deliberately absent: every field is a deterministic
//! function of the simulated run, which is what makes resumed results
//! byte-comparable against an uninterrupted golden run.

use serde::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal schema this build reads and writes.
pub const SCHEMA: u32 = 1;

/// Frame tag opening every journal line.
pub const FRAME_TAG: &str = "J1";

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// zlib/PNG polynomial. Bitwise form; the journal appends a handful of
/// short lines per wave, so a lookup table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frame a payload into one journal line (with trailing newline).
pub fn frame(payload: &str) -> String {
    format!("{FRAME_TAG} {:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// Unframe one journal line (no trailing newline): verify the tag and
/// checksum, return the payload slice.
pub fn unframe(line: &str) -> Result<&str, FrameError> {
    let rest = line.strip_prefix(FRAME_TAG).ok_or(FrameError::Tag)?;
    let rest = rest.strip_prefix(' ').ok_or(FrameError::Tag)?;
    let (crc_hex, payload) = rest.split_at_checked(8).ok_or(FrameError::Tag)?;
    let payload = payload.strip_prefix(' ').ok_or(FrameError::Tag)?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| FrameError::Tag)?;
    if crc32(payload.as_bytes()) != want {
        return Err(FrameError::Checksum);
    }
    Ok(payload)
}

/// Why a journal line failed to unframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Malformed frame: missing tag, short/odd checksum field.
    Tag,
    /// Well-formed frame whose checksum does not match the payload.
    Checksum,
}

/// A job's identity and workload as journaled at submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: String,
    pub app: String,
    pub args: Vec<String>,
    /// Completion budget in simulated seconds, measured on the job's
    /// wave-relative timeline.
    pub deadline_s: Option<f64>,
}

/// Final (per-attempt) outcome of one job, as journaled in its `done`
/// record. All times are wave-relative simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDone {
    pub job: String,
    pub wave: u32,
    pub exit: Option<i32>,
    pub error: Option<String>,
    pub oom: bool,
    pub timed_out: bool,
    /// The job finished after its journaled deadline.
    pub deadline: bool,
    pub end_s: f64,
    pub stdout: String,
}

impl JobDone {
    /// A clean result: exited zero within its deadline.
    pub fn succeeded(&self) -> bool {
        self.exit == Some(0) && self.error.is_none() && !self.deadline
    }

    /// Worth another launch attempt: an injected/infra failure rather
    /// than a deterministic application result or a missed deadline.
    pub fn retryable(&self) -> bool {
        self.error.is_some()
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    Header {
        schema: u32,
    },
    Submitted(JobSpec),
    /// A wave's atomic membership: `jobs` run together as one kernel
    /// launch on device `device`, launch attempt `attempt`.
    Started {
        wave: u32,
        attempt: u32,
        device: u32,
        jobs: Vec<String>,
    },
    Done(JobDone),
    Cancelled {
        job: String,
    },
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_arr(items: &[String]) -> Value {
    Value::Array(items.iter().map(|s| Value::Str(s.clone())).collect())
}

impl Record {
    /// Serialize to the schema-1 payload JSON (unframed).
    pub fn to_json(&self) -> String {
        let v = match self {
            Record::Header { schema } => obj(vec![
                ("rec", Value::Str("header".into())),
                ("schema", Value::U64(u64::from(*schema))),
            ]),
            Record::Submitted(j) => {
                let mut fields = vec![
                    ("rec", Value::Str("submitted".into())),
                    ("job", Value::Str(j.id.clone())),
                    ("app", Value::Str(j.app.clone())),
                    ("args", str_arr(&j.args)),
                ];
                if let Some(d) = j.deadline_s {
                    fields.push(("deadline_s", Value::F64(d)));
                }
                obj(fields)
            }
            Record::Started {
                wave,
                attempt,
                device,
                jobs,
            } => obj(vec![
                ("rec", Value::Str("started".into())),
                ("wave", Value::U64(u64::from(*wave))),
                ("attempt", Value::U64(u64::from(*attempt))),
                ("device", Value::U64(u64::from(*device))),
                ("jobs", str_arr(jobs)),
            ]),
            Record::Done(d) => obj(vec![
                ("rec", Value::Str("done".into())),
                ("job", Value::Str(d.job.clone())),
                ("wave", Value::U64(u64::from(d.wave))),
                (
                    "exit",
                    match d.exit {
                        Some(c) => {
                            if c >= 0 {
                                Value::U64(c as u64)
                            } else {
                                Value::I64(i64::from(c))
                            }
                        }
                        None => Value::Null,
                    },
                ),
                (
                    "error",
                    match &d.error {
                        Some(e) => Value::Str(e.clone()),
                        None => Value::Null,
                    },
                ),
                ("oom", Value::Bool(d.oom)),
                ("timed_out", Value::Bool(d.timed_out)),
                ("deadline", Value::Bool(d.deadline)),
                ("end_s", Value::F64(d.end_s)),
                ("stdout", Value::Str(d.stdout.clone())),
            ]),
            Record::Cancelled { job } => obj(vec![
                ("rec", Value::Str("cancelled".into())),
                ("job", Value::Str(job.clone())),
            ]),
        };
        serde_json::to_string(&v).expect("journal records always serialize")
    }

    /// Parse a schema-1 payload JSON.
    pub fn parse(payload: &str) -> Result<Record, String> {
        let v: Value = serde_json::from_str(payload).map_err(|e| format!("bad JSON: {e}"))?;
        let rec = v
            .get("rec")
            .and_then(Value::as_str)
            .ok_or("missing `rec` discriminator")?;
        let get_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field `{key}`"))
        };
        let get_u32 = |key: &str| -> Result<u32, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or(format!("missing u32 field `{key}`"))
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or(format!("missing bool field `{key}`"))
        };
        let get_str_arr = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .map(|e| e.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                })
                .ok_or(format!("missing array field `{key}`"))?
                .ok_or(format!("non-string element in `{key}`"))
        };
        match rec {
            "header" => Ok(Record::Header {
                schema: get_u32("schema")?,
            }),
            "submitted" => Ok(Record::Submitted(JobSpec {
                id: get_str("job")?,
                app: get_str("app")?,
                args: get_str_arr("args")?,
                deadline_s: v.get("deadline_s").and_then(Value::as_f64),
            })),
            "started" => Ok(Record::Started {
                wave: get_u32("wave")?,
                attempt: get_u32("attempt")?,
                device: get_u32("device")?,
                jobs: get_str_arr("jobs")?,
            }),
            "done" => Ok(Record::Done(JobDone {
                job: get_str("job")?,
                wave: get_u32("wave")?,
                exit: v
                    .get("exit")
                    .and_then(Value::as_i64)
                    .and_then(|n| i32::try_from(n).ok()),
                error: v.get("error").and_then(Value::as_str).map(str::to_string),
                oom: get_bool("oom")?,
                timed_out: get_bool("timed_out")?,
                deadline: get_bool("deadline")?,
                end_s: v
                    .get("end_s")
                    .and_then(Value::as_f64)
                    .ok_or("missing f64 field `end_s`")?,
                stdout: get_str("stdout")?,
            })),
            "cancelled" => Ok(Record::Cancelled {
                job: get_str("job")?,
            }),
            other => Err(format!("unknown record kind `{other}`")),
        }
    }
}

/// Journal problems that are *not* survivable crash artifacts.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    /// A line before the tail failed framing/CRC/parse — the file was
    /// edited or damaged, not merely torn by a crash.
    Corrupt {
        line: usize,
        reason: String,
    },
    /// Missing or wrong header record.
    BadHeader(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::BadHeader(r) => write!(f, "journal header: {r}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Result of a lossy load: the intact records, plus what (if anything)
/// was dropped from the tail.
#[derive(Debug)]
pub struct Loaded {
    pub records: Vec<Record>,
    /// A torn (incomplete or checksum-failing) final line was skipped.
    pub torn_tail: bool,
    /// Bytes of the intact prefix — everything before the torn tail.
    pub valid_bytes: u64,
}

/// Load a journal, skipping a torn trailing record.
///
/// A crash (`kill -9`, power loss) can only leave a *prefix* of the
/// appended bytes, so at most the final line can be damaged: missing
/// its newline, cut mid-payload, or cut inside the checksum field. Any
/// such tail is skipped and reported via [`Loaded::torn_tail`]. Damage
/// anywhere *else* — or a missing/alien header — is real corruption and
/// fails with [`JournalError::Corrupt`] / [`JournalError::BadHeader`].
pub fn load_lossy(path: &Path) -> Result<Loaded, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut valid_bytes = 0u64;
    let mut rest = text.as_str();
    let mut lineno = 0usize;
    while !rest.is_empty() {
        lineno += 1;
        let (line, complete, consumed) = match rest.find('\n') {
            Some(nl) => (&rest[..nl], true, nl + 1),
            None => (rest, false, rest.len()),
        };
        let parsed = unframe(line)
            .map_err(|e| format!("{e:?}"))
            .and_then(|p| Record::parse(p).map_err(|e| format!("bad record: {e}")));
        match parsed {
            Ok(rec) if complete => {
                records.push(rec);
                valid_bytes += consumed as u64;
            }
            // A frame that checks out but lost its newline is still a
            // torn append: the newline is part of the atomic write.
            Ok(_) => {
                torn_tail = true;
            }
            Err(reason) => {
                let at_tail = rest.len() == consumed;
                if at_tail {
                    torn_tail = true;
                } else {
                    return Err(JournalError::Corrupt {
                        line: lineno,
                        reason,
                    });
                }
            }
        }
        rest = &rest[consumed..];
    }
    match records.first() {
        Some(Record::Header { schema: s }) if *s == SCHEMA => {}
        Some(Record::Header { schema: s }) => {
            return Err(JournalError::BadHeader(format!(
                "schema {s} (this build reads schema {SCHEMA})"
            )))
        }
        Some(_) => {
            return Err(JournalError::BadHeader(
                "first record is not a header".into(),
            ))
        }
        // An empty file (or a journal whose very first append tore) has
        // no state to lose; the caller starts fresh.
        None => {}
    }
    Ok(Loaded {
        records,
        torn_tail,
        valid_bytes,
    })
}

/// The append-side handle: an open journal file with fsync'd writes and
/// an optional crash injector for CI.
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    /// Total journal bytes on disk (pre-existing + appended).
    bytes: u64,
    /// Fault injection: `std::process::abort()` — the in-process
    /// equivalent of `kill -9` — as soon as `bytes` reaches the
    /// threshold. Deterministic, so CI can kill the daemon at an exact
    /// record boundary and assert the resume contract.
    crash_after_bytes: Option<u64>,
}

impl Journal {
    /// Create a fresh journal at `path` (truncating) and write the
    /// schema header.
    pub fn create(path: &Path, crash_after_bytes: Option<u64>) -> Result<Journal, JournalError> {
        let file = std::fs::File::create(path)?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            bytes: 0,
            crash_after_bytes,
        };
        j.append(&Record::Header { schema: SCHEMA })?;
        Ok(j)
    }

    /// Open an existing journal for appending after a lossy load,
    /// truncating the torn tail (if any) back to `valid_bytes` so new
    /// appends continue the intact prefix.
    pub fn reopen(
        path: &Path,
        valid_bytes: u64,
        crash_after_bytes: Option<u64>,
    ) -> Result<Journal, JournalError> {
        // O_APPEND: every write lands at EOF, after the truncation.
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        file.set_len(valid_bytes)?;
        file.sync_all()?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            bytes: valid_bytes,
            crash_after_bytes,
        };
        if valid_bytes == 0 {
            j.append(&Record::Header { schema: SCHEMA })?;
        }
        Ok(j)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journal bytes durably on disk so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record: frame, write, fsync. Durable when this
    /// returns.
    pub fn append(&mut self, rec: &Record) -> Result<(), JournalError> {
        self.append_lines(&[frame(&rec.to_json())])
    }

    /// Group-commit: append several records in **one** write + fsync.
    /// Used for a wave's done records, so the wave commits atomically —
    /// a crash can tear the tail of the group, and the replay treats a
    /// wave with any member missing as not committed.
    pub fn append_batch(&mut self, recs: &[Record]) -> Result<(), JournalError> {
        let lines: Vec<String> = recs.iter().map(|r| frame(&r.to_json())).collect();
        self.append_lines(&lines)
    }

    fn append_lines(&mut self, lines: &[String]) -> Result<(), JournalError> {
        let mut buf = String::new();
        for l in lines {
            buf.push_str(l);
        }
        self.file.write_all(buf.as_bytes())?;
        self.file.sync_data()?;
        self.bytes += buf.len() as u64;
        if let Some(limit) = self.crash_after_bytes {
            if self.bytes >= limit {
                // The CI crash point: identical to a kill -9 landing
                // right after this fsync returned.
                std::process::abort();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            app: "xsbench".into(),
            args: vec!["-g".into(), "100".into()],
            deadline_s: None,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical CRC-32 check: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_tamper_detection() {
        let payload = r#"{"rec":"cancelled","job":"a"}"#;
        let line = frame(payload);
        assert!(line.ends_with('\n'));
        assert_eq!(unframe(line.trim_end()).unwrap(), payload);
        // Flip one payload byte → checksum failure.
        let bad = line.trim_end().replace("\"a\"", "\"b\"");
        assert_eq!(unframe(&bad), Err(FrameError::Checksum));
        assert_eq!(unframe("nope"), Err(FrameError::Tag));
        assert_eq!(unframe("J1 zzzz"), Err(FrameError::Tag));
    }

    #[test]
    fn records_roundtrip_through_json() {
        let recs = vec![
            Record::Header { schema: SCHEMA },
            Record::Submitted(JobSpec {
                deadline_s: Some(1.5),
                ..spec("job-1")
            }),
            Record::Submitted(spec("job-2")),
            Record::Started {
                wave: 3,
                attempt: 1,
                device: 0,
                jobs: vec!["job-1".into(), "job-2".into()],
            },
            Record::Done(JobDone {
                job: "job-1".into(),
                wave: 3,
                exit: Some(0),
                error: None,
                oom: false,
                timed_out: false,
                deadline: false,
                end_s: 0.125,
                stdout: "hello \"quoted\"\n".into(),
            }),
            Record::Done(JobDone {
                job: "job-2".into(),
                wave: 3,
                exit: None,
                error: Some("trap: boom".into()),
                oom: true,
                timed_out: false,
                deadline: true,
                end_s: 0.25,
                stdout: String::new(),
            }),
            Record::Cancelled {
                job: "job-9".into(),
            },
        ];
        for r in &recs {
            let json = r.to_json();
            assert_eq!(&Record::parse(&json).unwrap(), r, "{json}");
        }
    }

    #[test]
    fn load_skips_a_torn_tail_at_every_truncation_point() {
        let dir = std::env::temp_dir().join("dgc-serve-journal-torn");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("jobs.jsonl");
        let mut j = Journal::create(&path, None).unwrap();
        j.append(&Record::Submitted(spec("a"))).unwrap();
        j.append(&Record::Submitted(spec("b"))).unwrap();
        let full = std::fs::read(&path).unwrap();
        let full_records = load_lossy(&path).unwrap().records.len();
        assert_eq!(full_records, 3);

        let header_len = frame(&Record::Header { schema: SCHEMA }.to_json()).len();
        for cut in header_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = load_lossy(&path).unwrap();
            // Whole lines before the cut survive; the torn line is
            // dropped, never garbled into a record.
            assert!(loaded.records.len() <= full_records, "cut {cut}");
            // A cut exactly after a newline is clean; anything else
            // leaves a torn line the loader must report.
            assert_eq!(loaded.torn_tail, !full[..cut].ends_with(b"\n"), "cut {cut}");
            assert!(loaded.valid_bytes as usize <= cut, "cut {cut}");
            // The intact prefix re-opens and extends cleanly.
            let mut j2 = Journal::reopen(&path, loaded.valid_bytes, None).unwrap();
            j2.append(&Record::Cancelled { job: "x".into() }).unwrap();
            let after = load_lossy(&path).unwrap();
            assert!(!after.torn_tail);
            assert_eq!(after.records.len(), loaded.records.len() + 1);
        }
    }

    #[test]
    fn corruption_before_the_tail_fails_hard() {
        let dir = std::env::temp_dir().join("dgc-serve-journal-corrupt");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("jobs.jsonl");
        let mut j = Journal::create(&path, None).unwrap();
        j.append(&Record::Submitted(spec("a"))).unwrap();
        j.append(&Record::Submitted(spec("b"))).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* line (not the tail).
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_lossy(&path),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_or_wrong_header_is_rejected() {
        let dir = std::env::temp_dir().join("dgc-serve-journal-header");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("jobs.jsonl");
        std::fs::write(
            &path,
            frame(&Record::Cancelled { job: "a".into() }.to_json()),
        )
        .unwrap();
        assert!(matches!(load_lossy(&path), Err(JournalError::BadHeader(_))));
        std::fs::write(&path, frame(r#"{"rec":"header","schema":99}"#)).unwrap();
        assert!(matches!(load_lossy(&path), Err(JournalError::BadHeader(_))));
        // Empty file: fresh start, no error.
        std::fs::write(&path, "").unwrap();
        let loaded = load_lossy(&path).unwrap();
        assert!(loaded.records.is_empty() && !loaded.torn_tail);
    }

    #[test]
    fn group_commit_lands_as_one_contiguous_append() {
        let dir = std::env::temp_dir().join("dgc-serve-journal-batch");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("jobs.jsonl");
        let mut j = Journal::create(&path, None).unwrap();
        let before = j.bytes();
        j.append_batch(&[
            Record::Cancelled { job: "a".into() },
            Record::Cancelled { job: "b".into() },
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.len() as u64, j.bytes());
        assert!(j.bytes() > before);
        assert_eq!(load_lossy(&path).unwrap().records.len(), 3);
    }
}
