//! Streaming admission: the JSONL job-request protocol.
//!
//! The daemon consumes newline-delimited JSON operations from a file,
//! stdin/FIFO, or a watched file. One op per line:
//!
//! ```text
//! {"op":"submit","job":"j1","app":"xsbench","args":"-g 100 -l 32"}
//! {"op":"submit","job":"j2","app":"amgmk","args":["-i","20"],"deadline_s":2.5}
//! {"op":"cancel","job":"j1"}
//! {"op":"drain"}
//! ```
//!
//! `args` may be an array of tokens or a single string, in which case it
//! tokenizes by the argument-file rules ([`dgc_core::split_arg_line`]):
//! whitespace-separated, double-quoted tokens keep spaces — a request
//! line and an argfile line mean the same thing. Blank lines and `#`
//! comments are skipped, like the argument file.

use crate::journal::JobSpec;
use dgc_core::split_arg_line;
use serde::Value;

/// One parsed stream operation.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    Submit(JobSpec),
    Cancel {
        job: String,
    },
    /// Stop admitting: finish journaled work, write results, exit.
    Drain,
}

/// Parse one request line. `Ok(None)` for blanks and comments.
pub fn parse_op(line: &str) -> Result<Option<StreamOp>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing `op` field")?;
    match op {
        "submit" => {
            let id = v
                .get("job")
                .and_then(Value::as_str)
                .ok_or("submit: missing `job` id")?
                .to_string();
            if id.is_empty() {
                return Err("submit: empty `job` id".into());
            }
            let app = v
                .get("app")
                .and_then(Value::as_str)
                .ok_or("submit: missing `app` name")?
                .to_string();
            let args = match v.get("args") {
                None | Some(Value::Null) => Vec::new(),
                Some(Value::Str(s)) => split_arg_line(s),
                Some(Value::Array(a)) => a
                    .iter()
                    .map(|e| e.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
                    .ok_or("submit: non-string element in `args`")?,
                Some(other) => return Err(format!("submit: bad `args`: {other:?}")),
            };
            let deadline_s = match v.get("deadline_s") {
                None | Some(Value::Null) => None,
                Some(d) => Some(
                    d.as_f64()
                        .filter(|d| d.is_finite() && *d > 0.0)
                        .ok_or("submit: `deadline_s` must be a positive number")?,
                ),
            };
            Ok(Some(StreamOp::Submit(JobSpec {
                id,
                app,
                args,
                deadline_s,
            })))
        }
        "cancel" => {
            let job = v
                .get("job")
                .and_then(Value::as_str)
                .ok_or("cancel: missing `job` id")?
                .to_string();
            Ok(Some(StreamOp::Cancel { job }))
        }
        "drain" => Ok(Some(StreamOp::Drain)),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Parse a whole JSONL request document (file mode). Errors carry the
/// 1-based line number.
pub fn parse_ops(text: &str) -> Result<Vec<StreamOp>, String> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_op(line) {
            Ok(Some(op)) => ops.push(op),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_accepts_string_or_array_args() {
        let a = parse_op(
            r#"{"op":"submit","job":"j1","app":"xsbench","args":"-g 100 -l \"my data\""}"#,
        )
        .unwrap()
        .unwrap();
        let StreamOp::Submit(spec) = a else {
            panic!("not a submit")
        };
        assert_eq!(spec.args, vec!["-g", "100", "-l", "my data"]);
        assert_eq!(spec.deadline_s, None);

        let b = parse_op(
            r#"{"op":"submit","job":"j2","app":"amgmk","args":["-i","20"],"deadline_s":2.5}"#,
        )
        .unwrap()
        .unwrap();
        let StreamOp::Submit(spec) = b else {
            panic!("not a submit")
        };
        assert_eq!(spec.args, vec!["-i", "20"]);
        assert_eq!(spec.deadline_s, Some(2.5));
    }

    #[test]
    fn cancel_drain_blank_and_comment_lines() {
        assert_eq!(
            parse_op(r#"{"op":"cancel","job":"j1"}"#).unwrap(),
            Some(StreamOp::Cancel { job: "j1".into() })
        );
        assert_eq!(
            parse_op(r#"{"op":"drain"}"#).unwrap(),
            Some(StreamOp::Drain)
        );
        assert_eq!(parse_op("").unwrap(), None);
        assert_eq!(parse_op("  # queued by tonight's cron").unwrap(), None);
    }

    #[test]
    fn malformed_requests_reject_with_reason() {
        assert!(parse_op("not json").unwrap_err().contains("bad JSON"));
        assert!(parse_op(r#"{"op":"submit","app":"x"}"#)
            .unwrap_err()
            .contains("missing `job`"));
        assert!(parse_op(r#"{"op":"submit","job":"","app":"x"}"#)
            .unwrap_err()
            .contains("empty `job`"));
        assert!(
            parse_op(r#"{"op":"submit","job":"a","app":"x","deadline_s":-1}"#)
                .unwrap_err()
                .contains("deadline_s")
        );
        assert!(parse_op(r#"{"op":"explode"}"#)
            .unwrap_err()
            .contains("unknown op"));
        let doc = "{\"op\":\"drain\"}\nnope\n";
        assert!(parse_ops(doc).unwrap_err().starts_with("line 2:"));
    }
}
