//! The serve tentpole contract, property-tested: `kill -9` at **any**
//! byte boundary of the job journal loses nothing — `resume` replays
//! the intact prefix, re-runs only unfinished work, and the merged
//! results are bit-identical to an uninterrupted run.
//!
//! A crash is equivalent to truncating the fsync'd journal at an
//! arbitrary byte offset (appends are sequential and synced), so the
//! property quantifies over truncation points: for every cut,
//!
//! 1. resumed results == golden results, byte for byte;
//! 2. no job from a wave committed in the prefix re-executes;
//! 3. no journaled-submitted job is dropped — every one reaches a
//!    final state.

use dgc_core::{AppContext, HostApp};
use dgc_serve::{Daemon, JobPhase, ServeConfig, StreamOp};
use gpu_sim::{KernelError, TeamCtx};
use proptest::prelude::*;
use std::path::PathBuf;

const MODULE: &str = r#"
module "serve-test" {
  func @main arity=2 calls(@malloc, @atoi)
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("fill", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.serial("sum", |lane| {
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += lane.ld_idx::<f64>(buf, i)?;
        }
        Ok(acc)
    })?;
    // `-x` asks for a deterministic non-zero exit (an *application*
    // result, not an infrastructure fault).
    if cx.argv.iter().any(|a| a == "-x") {
        return Ok(3);
    }
    Ok(if sum >= 0.0 { 0 } else { 1 })
}

fn sort_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-k")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("seed", n, |i, lane| {
        lane.st_idx::<f64>(buf, i, ((i * 2_654_435_761) % 97) as f64)
    })?;
    Ok(0)
}

fn resolve(name: &str) -> Option<HostApp> {
    match name {
        "stream" => Some(HostApp::new("stream", MODULE, stream_main)),
        "sort" => Some(HostApp::new("sort", MODULE, sort_main)),
        _ => None,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        thread_limit: 32,
        max_wave: 3,
        wave_budget_s: 0.5,
        resolve,
        ..ServeConfig::default()
    }
}

fn submit(id: &str, app: &str, args: &[&str]) -> StreamOp {
    StreamOp::Submit(dgc_serve::JobSpec {
        id: id.into(),
        app: app.into(),
        args: args.iter().map(|s| s.to_string()).collect(),
        deadline_s: None,
    })
}

/// The workload: two apps interleaved (waves must group by app), a
/// duplicate workload (cost-cache hit), a deterministic failure, and a
/// cancellation.
fn ops() -> Vec<StreamOp> {
    vec![
        submit("j0", "stream", &["-n", "400"]),
        submit("j1", "stream", &["-n", "100"]),
        submit("j2", "sort", &["-k", "64"]),
        submit("j3", "stream", &["-n", "400"]),
        submit("j4", "sort", &["-k", "32"]),
        submit("j5", "stream", &["-n", "50", "-x"]),
        StreamOp::Cancel { job: "j4".into() },
        submit("j6", "stream", &["-n", "200"]),
    ]
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgc-serve-crashprop");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn run_golden(journal: &PathBuf) -> (String, Vec<u8>) {
    let mut d = Daemon::create(journal, config()).unwrap();
    for op in ops() {
        d.apply(&op).unwrap();
    }
    d.run_to_completion().unwrap();
    let results = d.merged_results();
    let bytes = std::fs::read(journal).unwrap();
    (results, bytes)
}

/// Resume from a truncated journal, re-supplying the job stream
/// (idempotent), and return (results, jobs committed in the prefix,
/// jobs this process executed).
fn resume_from_prefix(prefix: &[u8], name: &str) -> (String, Vec<String>, Vec<String>) {
    let path = tmp(name);
    std::fs::write(&path, prefix).unwrap();
    let (mut d, _report) = Daemon::resume(&path, config()).unwrap();
    let committed: Vec<String> = d
        .state()
        .waves
        .iter()
        .filter(|w| w.committed())
        .flat_map(|w| w.jobs.clone())
        .collect();
    for op in ops() {
        d.apply(&op).unwrap();
    }
    d.run_to_completion().unwrap();
    (d.merged_results(), committed, d.executed.clone())
}

#[test]
fn golden_run_is_reproducible() {
    let (a, ja) = run_golden(&tmp("golden-a.jsonl"));
    let (b, jb) = run_golden(&tmp("golden-b.jsonl"));
    assert_eq!(a, b, "two uninterrupted runs must agree bit-for-bit");
    assert_eq!(ja, jb, "journals too");
    // The workload exercises every status class.
    assert!(a.contains("\"status\":\"ok\""));
    assert!(a.contains("\"status\":\"failed\""));
    assert!(a.contains("\"status\":\"cancelled\""));
    assert!(a.contains("\"exit\":3"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash ≡ journal prefix. For any cut: resume reproduces the golden
    /// results byte-for-byte, never re-runs a committed job, never drops
    /// a journaled submission.
    #[test]
    fn resume_from_any_crash_point_matches_golden(frac in 0.0f64..1.0) {
        let (golden, journal) = run_golden(&tmp("golden.jsonl"));
        let cut = ((journal.len() as f64) * frac) as usize;
        let cut = cut.min(journal.len());
        let (resumed, committed, executed) = resume_from_prefix(&journal[..cut], "resume.jsonl");
        prop_assert_eq!(&resumed, &golden, "cut at byte {} of {}", cut, journal.len());
        for job in &committed {
            prop_assert!(
                !executed.contains(job),
                "job {} was committed in the prefix (cut {}) but re-executed",
                job,
                cut
            );
        }
    }
}

#[test]
fn resume_at_exact_record_boundaries_matches_golden() {
    let (golden, journal) = run_golden(&tmp("golden-edge.jsonl"));
    // Every record boundary (newline) plus the torn-header edge and the
    // full file.
    let mut cuts: Vec<usize> = journal
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    cuts.extend([0, 1, journal.len()]);
    for cut in cuts {
        let (resumed, committed, executed) =
            resume_from_prefix(&journal[..cut], "resume-edge.jsonl");
        assert_eq!(resumed, golden, "cut at byte {cut} of {}", journal.len());
        for job in &committed {
            assert!(!executed.contains(job), "{job} re-executed at cut {cut}");
        }
    }
}

#[test]
fn resume_without_the_job_stream_never_drops_a_journaled_submission() {
    let (_, journal) = run_golden(&tmp("golden-drop.jsonl"));
    // Cut mid-journal; resume WITHOUT re-supplying ops: every job whose
    // `submitted` record survived must still reach a final state.
    let cut = journal.len() * 2 / 3;
    let path = tmp("resume-drop.jsonl");
    std::fs::write(&path, &journal[..cut]).unwrap();
    let (mut d, _) = Daemon::resume(&path, config()).unwrap();
    let journaled: Vec<String> = d.state().jobs.iter().map(|j| j.id.clone()).collect();
    assert!(!journaled.is_empty(), "the 2/3 cut keeps some submissions");
    d.run_to_completion().unwrap();
    for id in &journaled {
        let phase = d.state().phase(id).expect("journaled job is known");
        assert!(
            !matches!(phase, JobPhase::Pending),
            "journaled job {id} was dropped (still pending after resume)"
        );
    }
}

#[test]
fn retry_failed_relaunches_infra_failures_with_backoff() {
    // A workload whose failure is an infrastructure fault: the watchdog
    // reaps instances that exceed a tiny cycle budget, which *is*
    // retryable (out.error is set).
    let path = tmp("retry.jsonl");
    let mut cfg = config();
    cfg.recovery.max_attempts = 3;
    cfg.recovery.instance_cycle_budget = Some(10.0); // reaps everything
    cfg.recovery.jitter_seed = Some(7);
    let mut d = Daemon::create(&path, cfg).unwrap();
    d.apply(&submit("r0", "stream", &["-n", "100"])).unwrap();
    d.run_to_completion().unwrap();
    let first = d.state().result("r0").unwrap().clone();
    assert!(first.error.is_some(), "watchdog kill is an infra error");
    assert!(first.retryable());

    // Round 1: relaunched (same deterministic failure), backoff paid.
    assert_eq!(d.retry_failed().unwrap(), 1);
    assert!(d.backoff_s > 0.0);
    assert_eq!(d.state().attempts("r0"), 2);
    // Round 2: third and final attempt.
    assert_eq!(d.retry_failed().unwrap(), 1);
    assert_eq!(d.state().attempts("r0"), 3);
    // Attempts exhausted: nothing left to retry.
    assert_eq!(d.retry_failed().unwrap(), 0);
    assert_eq!(d.state().attempts("r0"), 3);
    assert_eq!(d.summary().failed, 1);
    assert_eq!(d.summary().exit_code(), 1);

    // The journal tells the whole story on replay.
    let (d2, _) = Daemon::resume(&path, config()).unwrap();
    assert_eq!(d2.state().attempts("r0"), 3);
    assert_eq!(d2.summary().failed, 1);
}

#[test]
fn deadlines_are_journaled_and_deterministic() {
    let path = tmp("deadline.jsonl");
    let mut cfg = config();
    cfg.default_deadline_s = Some(1e-12); // everything misses
    let mut d = Daemon::create(&path, cfg).unwrap();
    d.apply(&submit("d0", "stream", &["-n", "100"])).unwrap();
    d.run_to_completion().unwrap();
    let r = d.state().result("d0").unwrap();
    assert!(r.deadline, "a 1ps deadline must be missed");
    assert_eq!(r.exit, Some(0), "the job itself still ran clean");
    assert!(!r.succeeded(), "a deadline miss is not a success");
    assert!(
        !r.retryable(),
        "deadline misses are deterministic, not retried"
    );
    assert_eq!(d.summary().exit_code(), 1);

    // Per-job deadlines override the default.
    let path2 = tmp("deadline2.jsonl");
    let mut cfg2 = config();
    cfg2.default_deadline_s = Some(1e-12);
    let mut d2 = Daemon::create(&path2, cfg2).unwrap();
    d2.apply(&StreamOp::Submit(dgc_serve::JobSpec {
        id: "d1".into(),
        app: "stream".into(),
        args: vec!["-n".into(), "100".into()],
        deadline_s: Some(1e6),
    }))
    .unwrap();
    d2.run_to_completion().unwrap();
    assert!(d2.state().result("d1").unwrap().succeeded());
    assert_eq!(d2.summary().exit_code(), 0);
}

#[test]
fn monitor_metrics_track_admission_waves_and_retries() {
    use dgc_monitor::MonitorRegistry;
    use std::sync::Arc;
    let reg = Arc::new(MonitorRegistry::new());
    let path = tmp("metrics.jsonl");
    let mut cfg = config();
    cfg.monitor = Some(Arc::clone(&reg));
    let mut d = Daemon::create(&path, cfg).unwrap();
    for op in ops() {
        d.apply(&op).unwrap();
    }
    // Unknown app → rejected before journaling.
    let rej = d.apply(&submit("zz", "nope", &[])).unwrap();
    assert!(matches!(rej, dgc_serve::Applied::Rejected(_)));
    d.run_to_completion().unwrap();

    let m = d.metrics().unwrap().clone();
    assert_eq!(m.admitted.get(), 7);
    assert_eq!(m.rejected.get(), 1);
    assert!(m.waves.get() >= 3, "two apps, max_wave 3, 6 runnable jobs");
    assert_eq!(m.wave_latency.count(), m.waves.get());
    // The registry renders as lintable OpenMetrics with the serve
    // families present.
    let text = reg.render();
    dgc_monitor::parse(&text).expect("serve metrics render canonically");
    assert!(text.contains("dgc_serve_jobs_admitted_total 7"));
    assert!(text.contains("dgc_serve_waves_total"));
    // The wave driver's own sink events flow through the same registry.
    assert!(text.contains("dgc_instances"));
}
