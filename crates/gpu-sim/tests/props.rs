//! Property-based tests for the simulator's timing engine and functional
//! execution layer.

use gpu_arch::GpuSpec;
use gpu_mem::DeviceMemory;
use gpu_sim::{
    simulate_timing, BlockTrace, MixedSeg, Phase, TeamCtx, TeamTrace, TimingInputs, TimingParams,
};
use proptest::prelude::*;

fn block(warps: u32, insts: f64, bytes: f64) -> BlockTrace {
    let seg = MixedSeg {
        insts,
        moved_bytes: bytes,
        useful_bytes: bytes,
        sectors: (bytes / 32.0) as u64,
        ..Default::default()
    };
    BlockTrace {
        teams: vec![TeamTrace {
            phases: vec![Phase {
                warps: (0..warps).map(|_| seg.clone()).collect(),
                label: "p".into(),
            }],
            warp_count: warps,
        }],
        shared_mem_bytes: 0,
    }
}

fn run(blocks: &[BlockTrace]) -> f64 {
    let spec = GpuSpec::a100_40gb();
    let params = TimingParams::default();
    simulate_timing(&TimingInputs {
        spec: &spec,
        blocks,
        params: &params,
        footprint_multiplier: 1.0,
        collect_detail: false,
        collect_stalls: false,
        cycle_budget: None,
        sample_interval: None,
    })
    .cycles
}

fn run_with_stalls(blocks: &[BlockTrace]) -> gpu_sim::TimingResult {
    let spec = GpuSpec::a100_40gb();
    let params = TimingParams::default();
    simulate_timing(&TimingInputs {
        spec: &spec,
        blocks,
        params: &params,
        footprint_multiplier: 1.0,
        collect_detail: false,
        collect_stalls: true,
        cycle_budget: None,
        sample_interval: None,
    })
}

fn run_sampled(blocks: &[BlockTrace], interval: f64) -> gpu_sim::TimingResult {
    let spec = GpuSpec::a100_40gb();
    let params = TimingParams::default();
    simulate_timing(&TimingInputs {
        spec: &spec,
        blocks,
        params: &params,
        footprint_multiplier: 1.0,
        collect_detail: false,
        collect_stalls: true,
        cycle_budget: None,
        sample_interval: Some(interval),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Time is monotone in work: more instructions never finish sooner.
    #[test]
    fn time_monotone_in_insts(warps in 1u32..16, insts in 10.0f64..100_000.0, bytes in 0.0f64..100_000.0) {
        let t1 = run(&[block(warps, insts, bytes)]);
        let t2 = run(&[block(warps, insts * 2.0, bytes)]);
        prop_assert!(t2 >= t1 - 1e-6, "{t2} < {t1}");
    }

    /// Time is monotone in traffic.
    #[test]
    fn time_monotone_in_bytes(warps in 1u32..16, insts in 10.0f64..100_000.0, bytes in 32.0f64..100_000.0) {
        let t1 = run(&[block(warps, insts, bytes)]);
        let t2 = run(&[block(warps, insts, bytes * 2.0)]);
        prop_assert!(t2 >= t1 - 1e-6, "{t2} < {t1}");
    }

    /// Adding blocks never speeds the kernel up (ensemble speedup is at
    /// most linear).
    #[test]
    fn more_blocks_never_faster(warps in 1u32..8, insts in 10.0f64..50_000.0, bytes in 0.0f64..50_000.0, n in 2usize..32) {
        let one = run(&[block(warps, insts, bytes)]);
        let many: Vec<BlockTrace> = (0..n).map(|_| block(warps, insts, bytes)).collect();
        let t = run(&many);
        prop_assert!(t >= one - 1e-6, "{t} < {one}");
        // ...and never slower than fully serialized execution.
        prop_assert!(t <= one * n as f64 + 1e-6, "{t} > {}", one * n as f64);
    }

    /// Work conservation: a pure-compute kernel's duration is at least
    /// total_insts / device_issue_capacity.
    #[test]
    fn compute_lower_bound(blocks_n in 1usize..16, warps in 1u32..8, insts in 100.0f64..10_000.0) {
        let spec = GpuSpec::a100_40gb();
        let blocks: Vec<BlockTrace> = (0..blocks_n).map(|_| block(warps, insts, 0.0)).collect();
        let t = run(&blocks);
        let total = blocks_n as f64 * warps as f64 * insts;
        let cap = spec.sm_count as f64 * spec.issue_slots_per_sm as f64;
        prop_assert!(t >= total / cap - 1e-6);
        // Per-warp IPC cap of 1 also bounds from below.
        prop_assert!(t >= insts - 1e-6);
    }

    /// Functional execution: a parallel fill with arbitrary lane counts
    /// always produces the right array, whatever the thread limit.
    #[test]
    fn parallel_fill_correct_for_any_thread_limit(lanes in 1u32..257, trip in 1u64..2_000) {
        let mut mem = DeviceMemory::new(1 << 22);
        let buf = mem.alloc(trip * 8).unwrap();
        let mut ctx = TeamCtx::new(&mut mem, 0, 1, lanes, 0, 48 << 10);
        ctx.parallel_for("fill", trip, |i, lane| lane.st_idx::<f64>(buf, i, i as f64 * 3.0))
            .unwrap();
        drop(ctx);
        for i in (0..trip).step_by((trip as usize / 7).max(1)) {
            prop_assert_eq!(mem.load::<f64>(buf.elem_add::<f64>(i)).unwrap(), i as f64 * 3.0);
        }
    }

    /// Stall attribution is exact and free of side effects: for every
    /// simulated kernel the exclusive buckets sum *exactly* to the total
    /// cycles (kernel-wide and per block), and turning attribution on
    /// changes no timing outcome.
    #[test]
    fn stall_buckets_partition_cycles_exactly(
        n in 1usize..24,
        warps in 1u32..16,
        insts in 0.0f64..50_000.0,
        bytes in 0.0f64..200_000.0,
        rpc_every in 1usize..8,
    ) {
        let mut blocks: Vec<BlockTrace> = (0..n)
            .map(|i| {
                // Heterogeneous work so waves, stragglers and mixed
                // bottlenecks all occur across cases.
                let scale = 1.0 + (i % 3) as f64;
                block(warps, insts * scale, bytes * scale)
            })
            .collect();
        for (i, b) in blocks.iter_mut().enumerate() {
            if i % rpc_every == 0 {
                b.teams[0].phases[0].warps[0].rpc_calls = (i % 3) as u64;
            }
        }
        let plain = run(&blocks);
        let r = run_with_stalls(&blocks);
        // Pure bookkeeping: enabling attribution changes nothing.
        prop_assert_eq!(plain, r.cycles);
        let st = r.stalls.as_ref().unwrap();
        prop_assert_eq!(st.kernel.total(), r.cycles, "kernel buckets {:?}", st.kernel);
        prop_assert_eq!(st.blocks.len(), blocks.len());
        for (bi, b) in st.blocks.iter().enumerate() {
            prop_assert_eq!(b.total(), r.block_end_cycles[bi], "block {} buckets {:?}", bi, b);
            let arr = [b.compute, b.dram_bw, b.mlp, b.rpc, b.alloc, b.wave_tail];
            prop_assert!(arr.iter().all(|&v| v >= 0.0));
        }
    }

    /// Utilization sampling is pure bookkeeping with a well-formed series:
    /// for every kernel and interval, enabling it changes no timing
    /// outcome, sample timestamps are strictly increasing, the last window
    /// closes exactly at kernel end, and every windowed rate stays in
    /// [0, 1].
    #[test]
    fn sampling_is_pure_and_timestamps_monotone(
        n in 1usize..24,
        warps in 1u32..16,
        insts in 10.0f64..50_000.0,
        bytes in 0.0f64..200_000.0,
        interval in 50.0f64..20_000.0,
    ) {
        let blocks: Vec<BlockTrace> = (0..n)
            .map(|i| {
                let scale = 1.0 + (i % 3) as f64;
                block(warps, insts * scale, bytes * scale)
            })
            .collect();
        let plain = run(&blocks);
        let r = run_sampled(&blocks, interval);
        prop_assert_eq!(plain, r.cycles);
        let tl = r.timeline.as_ref().unwrap();
        prop_assert_eq!(tl.interval, interval);
        prop_assert!(!tl.samples.is_empty());
        let mut prev = 0.0;
        for s in &tl.samples {
            prop_assert!(s.cycle > prev, "non-monotone sample at {}", s.cycle);
            prop_assert!(s.issue_rate >= 0.0 && s.issue_rate <= 1.0 + 1e-9);
            prop_assert!(s.dram_rate >= 0.0 && s.dram_rate <= 1.0 + 1e-9);
            prop_assert!(s.occupancy >= 0.0 && s.occupancy <= 1.0 + 1e-9);
            let win = s.cycle - prev;
            prop_assert!(
                (s.stall.total() - win).abs() < 1e-6 * win.max(1.0),
                "window stalls {} vs window {}", s.stall.total(), win
            );
            prev = s.cycle;
        }
        prop_assert_eq!(tl.samples.last().unwrap().cycle, r.cycles);
    }

    /// Trace totals are schedule-invariant: the same loop traced with
    /// different thread limits asks for the same useful bytes.
    #[test]
    fn useful_bytes_schedule_invariant(lanes_a in 1u32..129, lanes_b in 1u32..129, trip in 1u64..1_000) {
        let useful = |lanes: u32| {
            let mut mem = DeviceMemory::new(1 << 22);
            let buf = mem.alloc(trip * 8).unwrap();
            let mut ctx = TeamCtx::new(&mut mem, 0, 1, lanes, 0, 48 << 10);
            ctx.parallel_for("fill", trip, |i, lane| lane.st_idx::<f64>(buf, i, 0.0))
                .unwrap();
            ctx.finish().total_useful_bytes()
        };
        prop_assert_eq!(useful(lanes_a), useful(lanes_b));
    }
}
