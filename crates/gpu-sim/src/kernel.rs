use crate::ctx::{HostCallHook, KernelError, TeamCtx};
use crate::report::SimReport;
use crate::timing::{
    simulate_timing, ScheduleDetail, StallAttribution, TimingInputs, TimingParams,
    UtilizationTimeline,
};
use crate::trace::{BlockTrace, MixedSeg, Phase};
use gpu_arch::{occupancy, GpuSpec, LaunchConfig, LaunchError};
use gpu_mem::{AllocError, DeviceMemory, TransferEngine};
use serde::{Deserialize, Serialize};

/// Simulator-level launch failures (functional kernel errors are reported
/// per team in [`LaunchResult::team_outcomes`], not here).
#[derive(Debug)]
pub enum SimError {
    Launch(LaunchError),
}

impl From<LaunchError> for SimError {
    fn from(e: LaunchError) -> Self {
        SimError::Launch(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Launch(e) => write!(f, "launch failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// What one team's body produced.
#[derive(Debug, Clone, PartialEq)]
pub enum TeamOutcome {
    /// The team function returned this value (`__user_main`'s exit code).
    Return(i32),
    /// The team trapped (illegal access, failed allocation, …).
    Trap(KernelError),
}

impl TeamOutcome {
    pub fn return_code(&self) -> Option<i32> {
        match self {
            TeamOutcome::Return(c) => Some(*c),
            TeamOutcome::Trap(_) => None,
        }
    }
}

/// A fault injected into one team by [`KernelSpec::fault_of_team`].
///
/// Injection is deterministic and purely additive: a spec without the hook
/// (or a hook that always returns `None`) runs the exact code path the
/// non-injected launch runs, so results stay bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectedTeamFault {
    /// The team traps before running any application code, as if the
    /// device image hit an application-level error.
    Trap(String),
    /// The team traps with a device out-of-memory error for `requested`
    /// bytes, without actually disturbing the heap (the sibling teams see
    /// the same free space they would without injection).
    DeviceOom { requested: u64 },
    /// The team runs normally, then stalls for `stall_cycles` warp-visible
    /// cycles at the end — a hung instance for the watchdog to reap.
    Hang { stall_cycles: f64 },
}

/// Description of one kernel launch.
///
/// `team_fn` is invoked once per team; `teams_per_block` > 1 realizes the
/// paper's §3.1 packed `(N/M, M, 1)` mapping where several instances share
/// one thread block. `lanes_per_team` is the thread limit each team may
/// use; `tag_of_team` supplies the heap-region tag (the instance id).
pub struct KernelSpec<'a> {
    pub name: &'a str,
    /// Number of teams to run.
    pub num_teams: u32,
    /// Teams packed into one thread block (1 = the paper's default).
    pub teams_per_block: u32,
    /// Usable threads per team.
    pub lanes_per_team: u32,
    /// Heap-region tag for each team (defaults to the team id).
    pub tag_of_team: Option<&'a dyn Fn(u32) -> u32>,
    /// Paper-scale footprint divided by materialized footprint (≥ 1).
    pub footprint_multiplier: f64,
    /// Host-RPC services with stubs; `None` = unrestricted.
    pub rpc_services: Option<Vec<u32>>,
    /// Keep the per-block segment traces in the result (off by default:
    /// traces can be large for big ensembles).
    pub keep_traces: bool,
    /// Record the scheduling timeline ([`LaunchResult::schedule`]) for
    /// trace export. Off by default; never changes the timing outcome.
    pub collect_detail: bool,
    /// Attribute cycles to stall buckets ([`LaunchResult::stalls`]). Off
    /// by default; like `collect_detail`, pure bookkeeping.
    pub collect_stalls: bool,
    /// Deterministic fault injection: called once per team before the team
    /// body runs. `None` (the default) — and any hook returning `None` for
    /// every team — leaves the launch bit-identical to an uninjected one.
    pub fault_of_team: Option<&'a dyn Fn(u32) -> Option<InjectedTeamFault>>,
    /// Watchdog cycle budget per block (see `TimingInputs::cycle_budget`);
    /// teams of a block killed at the deadline trap with
    /// [`KernelError::Timeout`]. `None` disables the watchdog.
    pub cycle_budget: Option<f64>,
    /// Periodic utilization sampling interval in cycles
    /// ([`LaunchResult::timeline`]); see `TimingInputs::sample_interval`.
    /// `None` (the default) disables sampling and leaves every outcome
    /// bit-identical.
    pub sample_interval: Option<f64>,
    /// Pure-observation progress hook: invoked after each team finishes
    /// its functional execution with `(teams_done, num_teams)`. The hook
    /// sees copies of counters only and cannot influence the launch, so
    /// outcomes stay bit-identical whether or not it is set — the
    /// liveness signal wall-clock run monitors sample mid-kernel.
    pub on_team_done: Option<&'a dyn Fn(u32, u32)>,
}

impl<'a> KernelSpec<'a> {
    pub fn new(name: &'a str, num_teams: u32, lanes_per_team: u32) -> Self {
        Self {
            name,
            num_teams,
            teams_per_block: 1,
            lanes_per_team,
            tag_of_team: None,
            footprint_multiplier: 1.0,
            rpc_services: None,
            keep_traces: false,
            collect_detail: false,
            collect_stalls: false,
            fault_of_team: None,
            cycle_budget: None,
            sample_interval: None,
            on_team_done: None,
        }
    }
}

/// Per-team totals of the functional trace, always available in
/// [`LaunchResult::team_summaries`] (cheap: five numbers per team). Teams
/// are indexed by team id, so an ensemble launch reads instance `i`'s
/// work directly at index `i`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TeamSummary {
    pub insts: f64,
    pub useful_bytes: f64,
    pub moved_bytes: f64,
    pub sectors: u64,
    pub rpc_calls: u64,
}

/// Result of a completed launch.
#[derive(Debug)]
pub struct LaunchResult {
    pub report: SimReport,
    pub team_outcomes: Vec<TeamOutcome>,
    /// The segment traces, when [`KernelSpec::keep_traces`] was set —
    /// the raw material for per-phase performance analysis.
    pub block_traces: Option<Vec<BlockTrace>>,
    /// The scheduling timeline, when [`KernelSpec::collect_detail`] was
    /// set — block placement, phase spans and wave starts.
    pub schedule: Option<ScheduleDetail>,
    /// Stall-cycle attribution, when [`KernelSpec::collect_stalls`] was
    /// set — kernel-wide and per-block exclusive buckets.
    pub stalls: Option<StallAttribution>,
    /// Periodic utilization samples, when [`KernelSpec::sample_interval`]
    /// was set.
    pub timeline: Option<UtilizationTimeline>,
    /// Per-team work totals, indexed by team id. Always present.
    pub team_summaries: Vec<TeamSummary>,
}

/// The simulated device: hardware spec, global memory, transfer engine and
/// timing parameters.
pub struct Gpu {
    pub spec: GpuSpec,
    pub mem: DeviceMemory,
    pub transfers: TransferEngine,
    pub timing: TimingParams,
}

impl Gpu {
    pub fn new(spec: GpuSpec) -> Self {
        let mem = DeviceMemory::new(spec.global_mem_bytes);
        let transfers = TransferEngine::new(spec.pcie_bandwidth_gbps, 10.0);
        Self {
            spec,
            mem,
            transfers,
            timing: TimingParams::default(),
        }
    }

    /// An A100-40GB device, the paper's configuration.
    pub fn a100() -> Self {
        Self::new(GpuSpec::a100_40gb())
    }

    /// Launch a kernel: run every team functionally, then replay the traces
    /// through the timing engine.
    ///
    /// `host_hook` (if any) is shared by all teams, mirroring the single
    /// RPC service thread of the direct-GPU-compilation framework.
    pub fn launch(
        &mut self,
        spec: &KernelSpec<'_>,
        mut host_hook: Option<&mut HostCallHook<'_>>,
        mut team_fn: impl FnMut(&mut TeamCtx<'_>) -> Result<i32, KernelError>,
    ) -> Result<LaunchResult, SimError> {
        assert!(spec.num_teams >= 1, "kernel needs at least one team");
        assert!(spec.teams_per_block >= 1);
        let num_blocks = spec.num_teams.div_ceil(spec.teams_per_block);
        let threads_per_block = spec.lanes_per_team * spec.teams_per_block;
        let launch = LaunchConfig::linear(num_blocks, threads_per_block);
        launch.validate(&self.spec)?;
        let occ = occupancy(&self.spec, &launch)?;

        // ---- Functional execution, one team at a time. ----
        let mut block_traces: Vec<BlockTrace> =
            (0..num_blocks).map(|_| BlockTrace::default()).collect();
        let mut outcomes = Vec::with_capacity(spec.num_teams as usize);
        let mut max_shared = 0u64;
        for team in 0..spec.num_teams {
            let injected = spec.fault_of_team.and_then(|f| f(team));
            let free_bytes = match injected {
                Some(InjectedTeamFault::DeviceOom { .. }) => self.mem.free_bytes(),
                _ => 0,
            };
            let tag = spec.tag_of_team.map(|f| f(team)).unwrap_or(team);
            let mut ctx = TeamCtx::new(
                &mut self.mem,
                team,
                spec.num_teams,
                spec.lanes_per_team,
                tag,
                self.spec.shared_mem_per_block,
            );
            if let Some(hook) = host_hook.as_deref_mut() {
                ctx.set_host_call(hook, spec.rpc_services.clone());
            }
            let outcome = match injected {
                // Trap-class faults fire before any application code, so
                // the team does no work and disturbs no shared state.
                Some(InjectedTeamFault::Trap(ref msg)) => {
                    TeamOutcome::Trap(KernelError::App(format!("injected fault: {msg}")))
                }
                Some(InjectedTeamFault::DeviceOom { requested }) => {
                    TeamOutcome::Trap(KernelError::Alloc(AllocError::OutOfMemory {
                        requested,
                        free: free_bytes,
                    }))
                }
                _ => match team_fn(&mut ctx) {
                    Ok(code) => TeamOutcome::Return(code),
                    Err(e) => TeamOutcome::Trap(e),
                },
            };
            max_shared = max_shared.max(ctx.shared_bytes_used());
            let mut trace = ctx.finish();
            if let Some(InjectedTeamFault::Hang { stall_cycles }) = injected {
                // The hang is an extra barrier-delimited phase whose only
                // content is injected latency on warp 0; every sibling warp
                // waits at the barrier, so the whole team stalls.
                let mut warps = vec![MixedSeg::default(); trace.warp_count.max(1) as usize];
                warps[0].stall_cycles = stall_cycles;
                trace.phases.push(Phase {
                    warps,
                    label: "injected:hang".into(),
                });
            }
            let block = (team / spec.teams_per_block) as usize;
            block_traces[block].teams.push(trace);
            outcomes.push(outcome);
            if let Some(hook) = spec.on_team_done {
                hook(team + 1, spec.num_teams);
            }
        }
        for b in &mut block_traces {
            b.shared_mem_bytes = max_shared;
        }

        // ---- Timing. ----
        let mut timing = simulate_timing(&TimingInputs {
            spec: &self.spec,
            blocks: &block_traces,
            params: &self.timing,
            footprint_multiplier: spec.footprint_multiplier,
            collect_detail: spec.collect_detail,
            collect_stalls: spec.collect_stalls,
            cycle_budget: spec.cycle_budget,
            sample_interval: spec.sample_interval,
        });
        let schedule = timing.detail.take();
        let stalls = timing.stalls.take();
        let timeline = timing.timeline.take();

        // Teams reaped by the watchdog trap with `Timeout`, whatever their
        // functional outcome was — the simulated hardware killed them
        // before they could commit a result.
        for &(bi, ti) in &timing.timed_out_teams {
            let team = bi * spec.teams_per_block + ti;
            if let Some(o) = outcomes.get_mut(team as usize) {
                *o = TeamOutcome::Trap(KernelError::Timeout {
                    budget_cycles: spec.cycle_budget.unwrap_or(0.0),
                });
            }
        }

        // ---- Roll up the report. ----
        // Teams were pushed into blocks in team-id order, so iterating
        // blocks then teams visits team ids 0..num_teams in order.
        let mut team_summaries = Vec::with_capacity(spec.num_teams as usize);
        let mut total_insts = 0.0;
        let mut total_sectors = 0u64;
        let mut useful = 0.0;
        let mut moved = 0.0;
        let mut rpc = 0u64;
        for b in &block_traces {
            for t in &b.teams {
                let s = TeamSummary {
                    insts: t.total_insts(),
                    useful_bytes: t.total_useful_bytes(),
                    moved_bytes: t.total_moved_bytes(),
                    sectors: t.total_sectors(),
                    rpc_calls: t.total_rpc_calls(),
                };
                total_insts += s.insts;
                total_sectors += s.sectors;
                useful += s.useful_bytes;
                moved += s.moved_bytes;
                rpc += s.rpc_calls;
                team_summaries.push(s);
            }
        }
        let launch_overhead_s = self.spec.launch_overhead_us * 1e-6;
        let report = SimReport {
            kernel_name: spec.name.to_string(),
            kernel_cycles: timing.cycles,
            sim_time_s: launch_overhead_s + self.spec.cycles_to_seconds(timing.cycles),
            blocks: num_blocks,
            threads_per_block,
            waves: timing.waves,
            occupancy: occ.occupancy,
            total_insts,
            total_sectors,
            useful_bytes: useful,
            moved_bytes: moved,
            coalescing_efficiency: if moved > 0.0 { useful / moved } else { 1.0 },
            l2_hit: timing.l2_hit,
            dram_efficiency: timing.dram_efficiency,
            active_region_tags: timing.active_region_tags,
            issue_utilization: timing.issue_utilization,
            dram_utilization: timing.dram_utilization,
            rpc_calls: rpc,
            block_end_cycles: timing.block_end_cycles,
        };
        Ok(LaunchResult {
            report,
            team_outcomes: outcomes,
            block_traces: spec.keep_traces.then_some(block_traces),
            schedule,
            stalls,
            timeline,
            team_summaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memory-streaming team body: read `n` f64s, accumulate, write one.
    fn streaming_body(n: u64) -> impl FnMut(&mut TeamCtx<'_>) -> Result<i32, KernelError> {
        move |ctx| {
            let tag = ctx.default_tag();
            let (src, dst) = ctx.serial("alloc", |lane| {
                let src = lane.dev_alloc(8 * n)?;
                let dst = lane.dev_alloc(8)?;
                Ok((src, dst))
            })?;
            let _ = tag;
            let sum = ctx.parallel_for_reduce_f64("sum", n, |i, lane| {
                lane.work(2.0);
                lane.ld_idx::<f64>(src, i)
            })?;
            ctx.serial("store", |lane| lane.st::<f64>(dst, sum))?;
            Ok(0)
        }
    }

    #[test]
    fn launch_single_team_returns_code() {
        let mut gpu = Gpu::a100();
        let spec = KernelSpec::new("unit", 1, 32);
        let res = gpu
            .launch(&spec, None, |ctx| {
                ctx.serial("noop", |lane| {
                    lane.work(10.0);
                    Ok(())
                })?;
                Ok(7)
            })
            .unwrap();
        assert_eq!(res.team_outcomes, vec![TeamOutcome::Return(7)]);
        assert!(res.report.sim_time_s > 0.0);
        assert_eq!(res.report.blocks, 1);
    }

    #[test]
    fn team_progress_hook_streams_without_perturbing_the_launch() {
        let body = |ctx: &mut TeamCtx<'_>| {
            ctx.serial("work", |lane| {
                lane.work(100.0);
                Ok(())
            })?;
            Ok(0)
        };
        let mut plain_gpu = Gpu::a100();
        let plain = plain_gpu
            .launch(&KernelSpec::new("prog", 3, 32), None, body)
            .unwrap();

        let seen = std::cell::RefCell::new(Vec::new());
        let hook = |done: u32, total: u32| seen.borrow_mut().push((done, total));
        let mut hooked_gpu = Gpu::a100();
        let mut spec = KernelSpec::new("prog", 3, 32);
        spec.on_team_done = Some(&hook);
        let hooked = hooked_gpu.launch(&spec, None, body).unwrap();

        // One callback per team, in execution order, with the right total.
        assert_eq!(*seen.borrow(), vec![(1, 3), (2, 3), (3, 3)]);
        // Observation only: the hooked launch is bit-identical.
        assert_eq!(hooked.report.sim_time_s, plain.report.sim_time_s);
        assert_eq!(hooked.report.kernel_cycles, plain.report.kernel_cycles);
        assert_eq!(hooked.team_outcomes, plain.team_outcomes);
    }

    #[test]
    fn ensemble_teams_get_distinct_tags() {
        let mut gpu = Gpu::a100();
        let spec = KernelSpec::new("tags", 4, 32);
        let mut seen = Vec::new();
        gpu.launch(&spec, None, |ctx| {
            seen.push(ctx.default_tag());
            Ok(0)
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn streaming_ensemble_is_sublinear_in_time() {
        // Core paper mechanism: N instances in one launch take less than
        // N× the single-instance time, but more than 1× (contention).
        let t_of = |teams: u32| {
            let mut gpu = Gpu::a100();
            let spec = KernelSpec::new("stream", teams, 32);
            let res = gpu.launch(&spec, None, streaming_body(20_000)).unwrap();
            res.report.sim_time_s
        };
        let t1 = t_of(1);
        let t16 = t_of(16);
        assert!(t16 < t1 * 16.0, "t16 {t16} should be < 16×t1 {t1}");
        assert!(
            t16 >= t1 * 0.99,
            "t16 {t16} must not be faster than t1 {t1}"
        );
        let speedup = t1 * 16.0 / t16;
        assert!(speedup > 4.0, "ensemble speedup too small: {speedup}");
    }

    #[test]
    fn trap_is_reported_not_fatal() {
        let mut gpu = Gpu::a100();
        let spec = KernelSpec::new("trap", 2, 32);
        let res = gpu
            .launch(&spec, None, |ctx| {
                if ctx.team_id() == 1 {
                    return Err(KernelError::App("boom".into()));
                }
                Ok(0)
            })
            .unwrap();
        assert_eq!(res.team_outcomes[0], TeamOutcome::Return(0));
        assert!(matches!(res.team_outcomes[1], TeamOutcome::Trap(_)));
    }

    #[test]
    fn packed_mapping_reduces_blocks() {
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("packed", 8, 32);
        spec.teams_per_block = 4;
        let res = gpu.launch(&spec, None, |_| Ok(0)).unwrap();
        assert_eq!(res.report.blocks, 2);
        assert_eq!(res.report.threads_per_block, 128);
        assert_eq!(res.team_outcomes.len(), 8);
    }

    #[test]
    fn oversized_launch_rejected() {
        let mut gpu = Gpu::a100();
        let spec = KernelSpec::new("big", 1, 2048);
        assert!(matches!(
            gpu.launch(&spec, None, |_| Ok(0)),
            Err(SimError::Launch(_))
        ));
    }

    #[test]
    fn traces_kept_only_on_request() {
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("traces", 2, 32);
        let body = |ctx: &mut TeamCtx<'_>| {
            ctx.serial("w", |lane| {
                lane.work(10.0);
                Ok(())
            })?;
            Ok(0)
        };
        let res = gpu.launch(&spec, None, body).unwrap();
        assert!(res.block_traces.is_none());
        spec.keep_traces = true;
        let res = gpu.launch(&spec, None, body).unwrap();
        let traces = res.block_traces.unwrap();
        assert_eq!(traces.len(), 2);
        assert!(traces[0].teams[0].phases.len() >= 2); // prologue + serial
    }

    #[test]
    fn team_summaries_and_schedule_expose_per_instance_work() {
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("obs", 4, 32);
        spec.collect_detail = true;
        let res = gpu.launch(&spec, None, streaming_body(10_000)).unwrap();
        assert_eq!(res.team_summaries.len(), 4);
        for s in &res.team_summaries {
            assert!(s.insts > 0.0);
            assert!(s.moved_bytes > 0.0);
        }
        let total: f64 = res.team_summaries.iter().map(|s| s.insts).sum();
        assert!((total - res.report.total_insts).abs() < 1e-6);
        let sched = res.schedule.expect("collect_detail set");
        assert_eq!(sched.blocks.len(), 4);
        assert!(!sched.phase_spans.is_empty());
        // Without the flag, no timeline is paid for.
        spec.collect_detail = false;
        let res = gpu.launch(&spec, None, streaming_body(10_000)).unwrap();
        assert!(res.schedule.is_none());
    }

    #[test]
    fn stall_attribution_surfaces_per_block_buckets() {
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("stalls", 4, 32);
        spec.collect_stalls = true;
        let res = gpu.launch(&spec, None, streaming_body(10_000)).unwrap();
        let st = res.stalls.expect("collect_stalls set");
        assert_eq!(st.kernel.total(), res.report.kernel_cycles);
        assert_eq!(st.blocks.len(), res.report.blocks as usize);
        for (bi, b) in st.blocks.iter().enumerate() {
            assert_eq!(b.total(), res.report.block_end_cycles[bi]);
        }
        // Off by default.
        spec.collect_stalls = false;
        let res = gpu.launch(&spec, None, streaming_body(10_000)).unwrap();
        assert!(res.stalls.is_none());
    }

    #[test]
    fn injected_trap_and_oom_skip_team_body() {
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("inject", 3, 32);
        let fault = |team: u32| match team {
            0 => Some(InjectedTeamFault::Trap("boom".into())),
            1 => Some(InjectedTeamFault::DeviceOom { requested: 9 << 30 }),
            _ => None,
        };
        spec.fault_of_team = Some(&fault);
        let mut body_ran = Vec::new();
        let res = gpu
            .launch(&spec, None, |ctx| {
                body_ran.push(ctx.team_id());
                Ok(0)
            })
            .unwrap();
        assert!(matches!(
            &res.team_outcomes[0],
            TeamOutcome::Trap(KernelError::App(m)) if m.contains("injected fault: boom")
        ));
        assert!(matches!(
            res.team_outcomes[1],
            TeamOutcome::Trap(KernelError::Alloc(AllocError::OutOfMemory {
                requested,
                ..
            })) if requested == 9 << 30
        ));
        assert_eq!(res.team_outcomes[2], TeamOutcome::Return(0));
        // Faulted teams never reached application code.
        assert_eq!(body_ran, vec![2]);
    }

    #[test]
    fn empty_fault_hook_is_bit_identical() {
        let run = |inject: bool| {
            let mut gpu = Gpu::a100();
            let mut spec = KernelSpec::new("ident", 4, 32);
            spec.collect_stalls = true;
            let none = |_: u32| None;
            if inject {
                spec.fault_of_team = Some(&none);
            }
            gpu.launch(&spec, None, streaming_body(10_000)).unwrap()
        };
        let plain = run(false);
        let injected = run(true);
        assert_eq!(plain.report, injected.report);
        assert_eq!(plain.team_outcomes, injected.team_outcomes);
        assert_eq!(plain.stalls, injected.stalls);
    }

    #[test]
    fn hung_team_is_reaped_by_watchdog() {
        let hang = |team: u32| {
            (team == 1).then_some(InjectedTeamFault::Hang {
                stall_cycles: 1_000_000.0,
            })
        };
        // Without a watchdog the hang dominates the kernel.
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("hang", 2, 32);
        spec.fault_of_team = Some(&hang);
        let res = gpu.launch(&spec, None, streaming_body(1_000)).unwrap();
        assert!(res.report.kernel_cycles >= 1_000_000.0);
        assert_eq!(res.team_outcomes[1], TeamOutcome::Return(0));

        // With one, the hung team times out at the budget and its sibling
        // is untouched.
        spec.cycle_budget = Some(50_000.0);
        let res = gpu.launch(&spec, None, streaming_body(1_000)).unwrap();
        assert_eq!(res.team_outcomes[0], TeamOutcome::Return(0));
        assert_eq!(
            res.team_outcomes[1],
            TeamOutcome::Trap(KernelError::Timeout {
                budget_cycles: 50_000.0
            })
        );
        assert!(
            res.report.kernel_cycles < 100_000.0,
            "watchdog must cap the kernel: {} cycles",
            res.report.kernel_cycles
        );
    }

    #[test]
    fn generous_watchdog_budget_is_bit_identical() {
        let run = |budget: Option<f64>| {
            let mut gpu = Gpu::a100();
            let mut spec = KernelSpec::new("budget", 4, 32);
            spec.cycle_budget = budget;
            gpu.launch(&spec, None, streaming_body(10_000)).unwrap()
        };
        let plain = run(None);
        let budgeted = run(Some(1e12));
        assert_eq!(plain.report, budgeted.report);
        assert!(budgeted
            .team_outcomes
            .iter()
            .all(|o| matches!(o, TeamOutcome::Return(0))));
    }

    #[test]
    fn sampling_is_bit_identical_and_opt_in() {
        let run = |interval: Option<f64>| {
            let mut gpu = Gpu::a100();
            let mut spec = KernelSpec::new("sampled", 4, 32);
            spec.collect_stalls = true;
            spec.sample_interval = interval;
            gpu.launch(&spec, None, streaming_body(10_000)).unwrap()
        };
        let plain = run(None);
        let sampled = run(Some(1_000.0));
        assert!(plain.timeline.is_none());
        let tl = sampled.timeline.as_ref().expect("sample_interval set");
        assert!(!tl.samples.is_empty());
        // Sampling must not perturb the launch.
        assert_eq!(plain.report, sampled.report);
        assert_eq!(plain.team_outcomes, sampled.team_outcomes);
        assert_eq!(plain.stalls, sampled.stalls);
    }

    #[test]
    fn host_hook_reaches_teams() {
        let mut gpu = Gpu::a100();
        let spec = KernelSpec::new("rpc", 2, 32);
        let mut calls = 0u32;
        let mut hook = |_svc: u32, payload: &[u8]| -> Result<Vec<u8>, String> {
            calls += 1;
            Ok(payload.to_vec())
        };
        let res = gpu
            .launch(&spec, Some(&mut hook), |ctx| {
                ctx.serial("rpc", |lane| {
                    lane.host_call(0, b"x")?;
                    Ok(())
                })?;
                Ok(0)
            })
            .unwrap();
        assert_eq!(res.report.rpc_calls, 2);
        drop(res);
        assert_eq!(calls, 2);
    }
}
