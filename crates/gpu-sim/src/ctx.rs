use crate::trace::{MixedSeg, Phase, TeamTrace};
use gpu_mem::{coalesce, AccessError, AllocError, DeviceMemory, DevicePtr, Scalar};

/// Hook through which device code reaches the host (RPC). The offload
/// runtime installs an implementation backed by `host-rpc`; `service` keys
/// the target service, the payload is an opaque serialized request.
pub type HostCallHook<'a> = dyn FnMut(u32, &[u8]) -> Result<Vec<u8>, String> + 'a;

/// Instruction-cost constants of the functional execution model. These are
/// the per-operation charges folded into warp segments; they are mechanism
/// constants shared by all applications, not per-benchmark tuning.
mod cost {
    /// Issue cost of one global-memory load/store instruction.
    pub const MEM_OP: f64 = 1.0;
    /// Loop/bookkeeping overhead per parallel-for iteration.
    pub const ITER_OVERHEAD: f64 = 2.0;
    /// Shared-memory access.
    pub const SHARED_OP: f64 = 1.0;
    /// Global atomic read-modify-write beyond its memory transaction.
    pub const ATOMIC_EXTRA: f64 = 6.0;
    /// Device-side malloc/free bookkeeping.
    pub const MALLOC: f64 = 400.0;
    /// Kernel prologue per warp (argument setup, state machine).
    pub const WARP_PROLOGUE: f64 = 120.0;
}

/// Errors surfaced while executing a kernel functionally.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Illegal device-memory access (the simulated `CUDA_ERROR_ILLEGAL_ADDRESS`).
    Access(AccessError),
    /// Device-side allocation failure.
    Alloc(AllocError),
    /// Shared-memory request beyond the per-block limit.
    SharedMemExhausted { requested: u64, limit: u64 },
    /// Device code called a host service that the compiled image does not
    /// provide an RPC stub for.
    HostCallUnavailable { service: u32 },
    /// The host service itself failed.
    HostCallFailed(String),
    /// The watchdog killed the team after it exceeded its per-instance
    /// cycle budget (see `TimingInputs::cycle_budget`).
    Timeout { budget_cycles: f64 },
    /// Application-level error.
    App(String),
}

impl From<AccessError> for KernelError {
    fn from(e: AccessError) -> Self {
        KernelError::Access(e)
    }
}

impl From<AllocError> for KernelError {
    fn from(e: AllocError) -> Self {
        KernelError::Alloc(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Access(e) => write!(f, "illegal device access: {e}"),
            KernelError::Alloc(e) => write!(f, "device allocation failed: {e}"),
            KernelError::SharedMemExhausted { requested, limit } => {
                write!(f, "shared memory exhausted: {requested} B > {limit} B")
            }
            KernelError::HostCallUnavailable { service } => {
                write!(f, "no RPC stub for host service {service}")
            }
            KernelError::HostCallFailed(m) => write!(f, "host call failed: {m}"),
            KernelError::Timeout { budget_cycles } => {
                write!(f, "watchdog timeout: exceeded {budget_cycles} cycle budget")
            }
            KernelError::App(m) => write!(f, "application error: {m}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Typed handle to a team-local shared-memory array.
#[derive(Debug, Clone, Copy)]
pub struct SharedBuf<T> {
    offset: usize,
    len: usize,
    _t: std::marker::PhantomData<T>,
}

impl<T> SharedBuf<T> {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One memory-access record inside a single iteration.
#[derive(Debug, Clone, Copy)]
struct Rec {
    addr: u64,
    size: u8,
}

/// Per-lane scratch state for the current round of a parallel phase.
#[derive(Debug, Default)]
struct LaneScratch {
    recs: Vec<Rec>,
    /// Shared-memory byte offsets accessed this round, in program order
    /// (for bank-conflict analysis).
    shared_recs: Vec<u32>,
    insts: f64,
    rpc: u64,
    /// Device-heap allocator operations issued by this lane this round.
    alloc_ops: f64,
    /// The subset of `alloc_ops` served from a per-team free list.
    alloc_fast_ops: f64,
}

impl LaneScratch {
    fn clear(&mut self) {
        self.recs.clear();
        self.shared_recs.clear();
        self.insts = 0.0;
        self.rpc = 0;
        self.alloc_ops = 0.0;
        self.alloc_fast_ops = 0.0;
    }
}

/// Number of shared-memory banks (4-byte wide), as on NVIDIA devices.
const SHARED_BANKS: u32 = 32;

/// Serialization degree of one warp-wide shared-memory access: the maximum
/// number of *distinct addresses* mapped to the same bank. Lanes reading
/// the same address broadcast and do not conflict.
fn bank_conflict_degree(offsets: &[u32]) -> u32 {
    let mut per_bank: [Vec<u32>; SHARED_BANKS as usize] = Default::default();
    for &off in offsets {
        let bank = ((off / 4) % SHARED_BANKS) as usize;
        let word = off / 4;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank
        .iter()
        .map(|b| b.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// State shared between the team and its lanes during functional execution.
struct TeamInner<'g> {
    mem: &'g mut DeviceMemory,
    host_call: Option<&'g mut HostCallHook<'g>>,
    /// Services for which the compiled image generated RPC stubs; `None`
    /// means "all" (used by tests and raw simulator users).
    rpc_services: Option<Vec<u32>>,
    shared: Vec<u8>,
    shared_limit: u64,
    default_tag: u32,
    /// Snapshot of live regions: (start, end, tag, len), sorted by start.
    snapshot: Vec<(u64, u64, u32, u64)>,
    snapshot_gen: u64,
}

impl<'g> TeamInner<'g> {
    fn refresh_snapshot(&mut self) {
        if self.snapshot_gen == self.mem.generation() && !self.snapshot.is_empty() {
            return;
        }
        self.snapshot = self
            .mem
            .live_regions()
            .into_iter()
            .map(|r| (r.start, r.start + r.len, r.tag, r.len))
            .collect();
        self.snapshot_gen = self.mem.generation();
    }

    /// Region (tag, start, len) containing `addr`, from the snapshot.
    fn region_meta(&self, addr: u64) -> Option<(u32, u64, u64)> {
        let idx = self.snapshot.partition_point(|&(s, _, _, _)| s <= addr);
        if idx == 0 {
            return None;
        }
        let (s, e, tag, len) = self.snapshot[idx - 1];
        (addr < e).then_some((tag, s, len))
    }
}

/// The execution context handed to one lane (thread) of a team.
///
/// All device work flows through this type: global loads/stores are
/// bounds-checked against simulated memory *and* recorded for coalescing
/// analysis; arithmetic is accounted through [`LaneCtx::work`].
pub struct LaneCtx<'t, 'g> {
    inner: &'t mut TeamInner<'g>,
    scratch: &'t mut LaneScratch,
}

impl<'t, 'g> LaneCtx<'t, 'g> {
    /// The heap-region tag of this team — the instance id under ensemble
    /// execution. Device-libc stubs use it to label RPC requests.
    pub fn tag(&self) -> u32 {
        self.inner.default_tag
    }

    /// Load a scalar from global memory.
    pub fn ld<T: Scalar>(&mut self, p: DevicePtr) -> Result<T, KernelError> {
        let v = self.inner.mem.load::<T>(p)?;
        self.scratch.recs.push(Rec {
            addr: p.0,
            size: T::SIZE as u8,
        });
        self.scratch.insts += cost::MEM_OP;
        Ok(v)
    }

    /// Store a scalar to global memory.
    pub fn st<T: Scalar>(&mut self, p: DevicePtr, v: T) -> Result<(), KernelError> {
        self.inner.mem.store::<T>(p, v)?;
        self.scratch.recs.push(Rec {
            addr: p.0,
            size: T::SIZE as u8,
        });
        self.scratch.insts += cost::MEM_OP;
        Ok(())
    }

    /// Load element `i` of a typed array at `base`.
    pub fn ld_idx<T: Scalar>(&mut self, base: DevicePtr, i: u64) -> Result<T, KernelError> {
        self.ld(base.elem_add::<T>(i))
    }

    /// Store element `i` of a typed array at `base`.
    pub fn st_idx<T: Scalar>(&mut self, base: DevicePtr, i: u64, v: T) -> Result<(), KernelError> {
        self.st(base.elem_add::<T>(i), v)
    }

    /// Account `insts` warp instructions of arithmetic (FLOPs, ALU ops,
    /// branches) executed by this lane.
    pub fn work(&mut self, insts: f64) {
        self.scratch.insts += insts;
    }

    /// Global-memory atomic add on an `f64`; returns the previous value.
    pub fn atomic_add_f64(&mut self, p: DevicePtr, v: f64) -> Result<f64, KernelError> {
        let old = self.inner.mem.load::<f64>(p)?;
        self.inner.mem.store::<f64>(p, old + v)?;
        self.scratch.recs.push(Rec { addr: p.0, size: 8 });
        self.scratch.insts += cost::MEM_OP + cost::ATOMIC_EXTRA;
        Ok(old)
    }

    /// Global-memory atomic add on a `u64`; returns the previous value.
    pub fn atomic_add_u64(&mut self, p: DevicePtr, v: u64) -> Result<u64, KernelError> {
        let old = self.inner.mem.load::<u64>(p)?;
        self.inner.mem.store::<u64>(p, old.wrapping_add(v))?;
        self.scratch.recs.push(Rec { addr: p.0, size: 8 });
        self.scratch.insts += cost::MEM_OP + cost::ATOMIC_EXTRA;
        Ok(old)
    }

    /// Allocate `bytes` of device-heap memory, tagged with this team's tag.
    /// This is the primitive `device-libc`'s `malloc` is built on.
    pub fn dev_alloc(&mut self, bytes: u64) -> Result<DevicePtr, KernelError> {
        let tag = self.inner.default_tag;
        let recycled_before = self.inner.mem.stats().recycled_allocations;
        let p = self
            .inner
            .mem
            .alloc_tagged(bytes, gpu_mem::Backing::Materialized, tag)?;
        self.scratch.insts += cost::MALLOC;
        self.scratch.alloc_ops += 1.0;
        if self.inner.mem.stats().recycled_allocations > recycled_before {
            self.scratch.alloc_fast_ops += 1.0;
        }
        self.inner.refresh_snapshot();
        Ok(p)
    }

    /// Reserve `bytes` of device address space without materializing host
    /// backing. Applications use this to model their *paper-scale* data
    /// footprint (for out-of-memory behaviour) while running functionally
    /// on scaled-down materialized arrays.
    pub fn dev_reserve(&mut self, bytes: u64) -> Result<DevicePtr, KernelError> {
        let tag = self.inner.default_tag;
        let recycled_before = self.inner.mem.stats().recycled_allocations;
        let p = self
            .inner
            .mem
            .alloc_tagged(bytes, gpu_mem::Backing::Reserved, tag)?;
        self.scratch.alloc_ops += 1.0;
        if self.inner.mem.stats().recycled_allocations > recycled_before {
            self.scratch.alloc_fast_ops += 1.0;
        }
        self.inner.refresh_snapshot();
        Ok(p)
    }

    /// Free device-heap memory allocated with [`LaneCtx::dev_alloc`].
    pub fn dev_free(&mut self, p: DevicePtr) -> Result<(), KernelError> {
        self.inner.mem.free(p)?;
        self.scratch.insts += cost::MALLOC;
        self.scratch.alloc_ops += 1.0;
        self.inner.refresh_snapshot();
        Ok(())
    }

    /// Read from a shared-memory array.
    pub fn sh_ld<T: Scalar>(&mut self, buf: &SharedBuf<T>, i: usize) -> Result<T, KernelError> {
        assert!(i < buf.len, "shared read at {i} past length {}", buf.len);
        let off = buf.offset + i * T::SIZE;
        self.scratch.insts += cost::SHARED_OP;
        self.scratch.shared_recs.push(off as u32);
        Ok(T::load_le(&self.inner.shared[off..off + T::SIZE]))
    }

    /// Write to a shared-memory array.
    pub fn sh_st<T: Scalar>(
        &mut self,
        buf: &SharedBuf<T>,
        i: usize,
        v: T,
    ) -> Result<(), KernelError> {
        assert!(i < buf.len, "shared write at {i} past length {}", buf.len);
        let off = buf.offset + i * T::SIZE;
        self.scratch.insts += cost::SHARED_OP;
        self.scratch.shared_recs.push(off as u32);
        v.store_le(&mut self.inner.shared[off..off + T::SIZE]);
        Ok(())
    }

    /// Perform a blocking host RPC round trip.
    pub fn host_call(&mut self, service: u32, payload: &[u8]) -> Result<Vec<u8>, KernelError> {
        if let Some(allowed) = &self.inner.rpc_services {
            if !allowed.contains(&service) {
                return Err(KernelError::HostCallUnavailable { service });
            }
        }
        let Some(hook) = self.inner.host_call.as_mut() else {
            return Err(KernelError::HostCallUnavailable { service });
        };
        self.scratch.rpc += 1;
        hook(service, payload).map_err(KernelError::HostCallFailed)
    }
}

/// Per-team execution context: the device-side view one application
/// instance gets under the direct GPU compilation scheme.
///
/// The OpenMP execution structure maps directly: [`TeamCtx::serial`] is the
/// sequential part of `__user_main` (one initial thread), and
/// [`TeamCtx::parallel_for`] is an `omp parallel for` with a static chunk-1
/// schedule across the team's `thread_limit` threads. An implicit barrier
/// separates phases.
pub struct TeamCtx<'g> {
    inner: TeamInner<'g>,
    trace: TeamTrace,
    team_id: u32,
    num_teams: u32,
    lane_count: u32,
    scratches: Vec<LaneScratch>,
    error: Option<KernelError>,
}

impl<'g> TeamCtx<'g> {
    /// Create a context for team `team_id` of `num_teams`, with
    /// `lane_count` usable threads, allocating with `default_tag`.
    pub fn new(
        mem: &'g mut DeviceMemory,
        team_id: u32,
        num_teams: u32,
        lane_count: u32,
        default_tag: u32,
        shared_limit: u64,
    ) -> Self {
        assert!(lane_count >= 1, "a team needs at least one thread");
        let warp_count = lane_count.div_ceil(32);
        let mut inner = TeamInner {
            mem,
            host_call: None,
            rpc_services: None,
            shared: Vec::new(),
            shared_limit,
            default_tag,
            snapshot: Vec::new(),
            snapshot_gen: u64::MAX,
        };
        inner.refresh_snapshot();
        let mut trace = TeamTrace {
            phases: Vec::new(),
            warp_count,
        };
        // Kernel prologue: every warp pays its setup cost in phase 0.
        trace.phases.push(Phase {
            warps: (0..warp_count)
                .map(|_| MixedSeg {
                    insts: cost::WARP_PROLOGUE,
                    ..Default::default()
                })
                .collect(),
            label: "prologue".into(),
        });
        Self {
            inner,
            trace,
            team_id,
            num_teams,
            lane_count,
            scratches: (0..lane_count).map(|_| LaneScratch::default()).collect(),
            error: None,
        }
    }

    /// Install the host-RPC hook and the set of services the compiled image
    /// generated stubs for (`None` = all services reachable).
    pub fn set_host_call(&mut self, hook: &'g mut HostCallHook<'g>, services: Option<Vec<u32>>) {
        self.inner.host_call = Some(hook);
        self.inner.rpc_services = services;
    }

    pub fn team_id(&self) -> u32 {
        self.team_id
    }

    pub fn num_teams(&self) -> u32 {
        self.num_teams
    }

    /// Usable threads in this team (the loader's `-t` thread limit).
    pub fn thread_limit(&self) -> u32 {
        self.lane_count
    }

    /// The tag new device allocations receive (the instance id under
    /// ensemble execution).
    pub fn default_tag(&self) -> u32 {
        self.inner.default_tag
    }

    /// Allocate a team-local shared-memory array of `len` `T`s.
    pub fn shared_alloc<T: Scalar>(&mut self, len: usize) -> Result<SharedBuf<T>, KernelError> {
        let bytes = (len * T::SIZE) as u64;
        let used = self.inner.shared.len() as u64;
        if used + bytes > self.inner.shared_limit {
            return Err(KernelError::SharedMemExhausted {
                requested: used + bytes,
                limit: self.inner.shared_limit,
            });
        }
        let offset = self.inner.shared.len();
        self.inner.shared.resize(offset + len * T::SIZE, 0);
        Ok(SharedBuf {
            offset,
            len,
            _t: std::marker::PhantomData,
        })
    }

    /// Shared-memory bytes this team ended up using.
    pub fn shared_bytes_used(&self) -> u64 {
        self.inner.shared.len() as u64
    }

    /// Run a single-threaded region (the sequential portions of the user's
    /// `main`). Only the team's initial thread works; all other warps idle
    /// at the closing barrier.
    pub fn serial<R>(
        &mut self,
        label: &str,
        f: impl FnOnce(&mut LaneCtx<'_, 'g>) -> Result<R, KernelError>,
    ) -> Result<R, KernelError> {
        self.check_poisoned()?;
        self.inner.refresh_snapshot();
        self.scratches[0].clear();
        let result = {
            let mut lane = LaneCtx {
                inner: &mut self.inner,
                scratch: &mut self.scratches[0],
            };
            f(&mut lane)
        };
        let seg = Self::lone_lane_segment(&self.inner, &self.scratches[0]);
        let mut warps = vec![MixedSeg::default(); self.trace.warp_count as usize];
        warps[0] = seg;
        self.trace.phases.push(Phase {
            warps,
            label: label.to_string(),
        });
        self.poison_on_err(result)
    }

    /// Run an OpenMP-style `parallel for` over `trip` iterations with a
    /// static chunk-1 schedule across this team's threads: thread `t`
    /// executes iterations `t, t+T, t+2T, …` — the distribution that makes
    /// adjacent lanes touch adjacent elements (coalescing-friendly), as the
    /// LLVM OpenMP device runtime does.
    pub fn parallel_for(
        &mut self,
        label: &str,
        trip: u64,
        mut f: impl FnMut(u64, &mut LaneCtx<'_, 'g>) -> Result<(), KernelError>,
    ) -> Result<(), KernelError> {
        self.check_poisoned()?;
        self.inner.refresh_snapshot();
        let lanes = self.lane_count as u64;
        let warp_count = self.trace.warp_count as usize;
        let mut accums = vec![MixedSeg::default(); warp_count];
        let rounds = trip.div_ceil(lanes.max(1));
        let mut result: Result<(), KernelError> = Ok(());

        'rounds: for round in 0..rounds {
            for s in self.scratches.iter_mut() {
                s.clear();
            }
            for lane in 0..lanes {
                let i = round * lanes + lane;
                if i >= trip {
                    break;
                }
                let mut ctx = LaneCtx {
                    inner: &mut self.inner,
                    scratch: &mut self.scratches[lane as usize],
                };
                ctx.scratch.insts += cost::ITER_OVERHEAD;
                if let Err(e) = f(i, &mut ctx) {
                    result = Err(e);
                    break 'rounds;
                }
            }
            self.fold_round(&mut accums);
        }

        self.trace.phases.push(Phase {
            warps: accums,
            label: label.to_string(),
        });
        self.poison_on_err(result)
    }

    /// `parallel_for` with a sum reduction: each iteration contributes an
    /// `f64`, combined with the OpenMP `reduction(+)` semantics. The
    /// tree-reduction epilogue is charged to the trace.
    pub fn parallel_for_reduce_f64(
        &mut self,
        label: &str,
        trip: u64,
        mut f: impl FnMut(u64, &mut LaneCtx<'_, 'g>) -> Result<f64, KernelError>,
    ) -> Result<f64, KernelError> {
        let mut acc = 0.0f64;
        self.parallel_for(label, trip, |i, lane| {
            acc += f(i, lane)?;
            lane.work(1.0);
            Ok(())
        })?;
        // Tree reduction across threads: log2(T) shared-memory rounds.
        let steps = (self.lane_count.max(2) as f64).log2().ceil();
        let warp_count = self.trace.warp_count as usize;
        self.trace.phases.push(Phase {
            warps: (0..warp_count)
                .map(|_| MixedSeg {
                    insts: 4.0 * steps,
                    ..Default::default()
                })
                .collect(),
            label: format!("{label}:reduce"),
        });
        Ok(acc)
    }

    /// Explicit team barrier with no work (rarely needed; phases already
    /// synchronize implicitly).
    pub fn barrier(&mut self) {
        let warp_count = self.trace.warp_count as usize;
        self.trace.phases.push(Phase {
            warps: vec![MixedSeg::default(); warp_count],
            label: "barrier".into(),
        });
    }

    /// Finish execution and hand back the trace.
    pub fn finish(self) -> TeamTrace {
        self.trace
    }

    /// The trace built so far (for inspection in tests).
    pub fn trace(&self) -> &TeamTrace {
        &self.trace
    }

    /// Labels of the phases recorded so far, in execution order — the same
    /// order the timing engine's `PhaseSpan`s replay them. Observation
    /// only: never affects any recorded cost.
    pub fn phase_labels(&self) -> Vec<&str> {
        self.trace.phases.iter().map(|p| p.label.as_str()).collect()
    }

    fn check_poisoned(&self) -> Result<(), KernelError> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn poison_on_err<R>(&mut self, r: Result<R, KernelError>) -> Result<R, KernelError> {
        if let Err(e) = &r {
            self.error = Some(e.clone());
        }
        r
    }

    /// Build the segment for a single working lane (serial regions): every
    /// access coalesces alone.
    fn lone_lane_segment(inner: &TeamInner<'g>, scratch: &LaneScratch) -> MixedSeg {
        let mut seg = MixedSeg {
            insts: scratch.insts,
            rpc_calls: scratch.rpc,
            alloc_ops: scratch.alloc_ops,
            alloc_fast_ops: scratch.alloc_fast_ops,
            ..Default::default()
        };
        for rec in &scratch.recs {
            let r = coalesce(&[Some(rec.addr)], rec.size as u32);
            seg.sectors += r.sectors as u64;
            seg.moved_bytes += r.moved_bytes as f64;
            seg.useful_bytes += r.useful_bytes as f64;
            if let Some((tag, start, len)) = inner.region_meta(rec.addr) {
                seg.add_region_tag(tag);
                seg.add_region_footprint(start, len);
            }
        }
        seg
    }

    /// Coalesce and fold one round's per-lane records into the phase's
    /// warp accumulators. Lanes are grouped 32 to a warp; the k-th access
    /// of each lane coalesces positionally (lockstep assumption).
    fn fold_round(&mut self, accums: &mut [MixedSeg]) {
        let lanes = self.lane_count as usize;
        let mut addrs: Vec<Option<u64>> = Vec::with_capacity(32);
        for (w, accum) in accums.iter_mut().enumerate() {
            let lane_lo = w * 32;
            let lane_hi = (lane_lo + 32).min(lanes);
            if lane_lo >= lanes {
                break;
            }
            let warp_scratches = &self.scratches[lane_lo..lane_hi];

            // Compute: lockstep warps issue for as long as their slowest lane.
            let mut max_insts = 0.0f64;
            let mut rpc = 0u64;
            let mut alloc_ops = 0.0f64;
            let mut alloc_fast_ops = 0.0f64;
            let mut max_recs = 0usize;
            let mut max_shared_recs = 0usize;
            for s in warp_scratches {
                max_insts = max_insts.max(s.insts);
                rpc += s.rpc;
                alloc_ops += s.alloc_ops;
                alloc_fast_ops += s.alloc_fast_ops;
                max_recs = max_recs.max(s.recs.len());
                max_shared_recs = max_shared_recs.max(s.shared_recs.len());
            }
            accum.insts += max_insts;
            accum.rpc_calls += rpc;
            accum.alloc_ops += alloc_ops;
            accum.alloc_fast_ops += alloc_fast_ops;

            // Shared memory: a warp access replays once per conflicting
            // bank; charge the extra replays as issue work.
            let mut bank_offsets: Vec<u32> = Vec::with_capacity(32);
            for k in 0..max_shared_recs {
                bank_offsets.clear();
                for s in warp_scratches {
                    if let Some(&off) = s.shared_recs.get(k) {
                        bank_offsets.push(off);
                    }
                }
                let degree = bank_conflict_degree(&bank_offsets);
                accum.insts += (degree - 1) as f64;
            }

            // Memory: positional coalescing across lanes.
            for k in 0..max_recs {
                addrs.clear();
                let mut size = 0u32;
                let mut first_addr = None;
                for s in warp_scratches {
                    match s.recs.get(k) {
                        Some(rec) => {
                            addrs.push(Some(rec.addr));
                            size = size.max(rec.size as u32);
                            if first_addr.is_none() {
                                first_addr = Some(rec.addr);
                            }
                        }
                        None => addrs.push(None),
                    }
                }
                let r = coalesce(&addrs, size);
                accum.sectors += r.sectors as u64;
                accum.moved_bytes += r.moved_bytes as f64;
                accum.useful_bytes += r.useful_bytes as f64;
                if let Some(addr) = first_addr {
                    if let Some((tag, start, len)) = self.inner.region_meta(addr) {
                        accum.add_region_tag(tag);
                        accum.add_region_footprint(start, len);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(1 << 24)
    }

    #[test]
    fn parallel_for_writes_functionally() {
        let mut m = mem();
        let buf = m.alloc(8 * 1000).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 128, 0, 48 << 10);
        ctx.parallel_for("fill", 1000, |i, lane| {
            lane.st_idx::<f64>(buf, i, i as f64 * 2.0)
        })
        .unwrap();
        let trace = ctx.finish();
        assert_eq!(m.read_slice::<f64>(buf, 3).unwrap(), vec![0.0, 2.0, 4.0]);
        assert_eq!(m.load::<f64>(buf.elem_add::<f64>(999)).unwrap(), 1998.0);
        // 128 threads = 4 warps, plus the prologue phase.
        assert_eq!(trace.warp_count, 4);
        assert_eq!(trace.phases.len(), 2);
    }

    #[test]
    fn dense_writes_are_coalesced() {
        let mut m = mem();
        let buf = m.alloc(8 * 1024).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        ctx.parallel_for("fill", 1024, |i, lane| lane.st_idx::<f64>(buf, i, 1.0))
            .unwrap();
        let trace = ctx.finish();
        let seg = &trace.phases[1].warps[0];
        // 1024 f64 stores = 8192 useful bytes; perfectly coalesced = 256
        // sectors = 8192 moved bytes.
        assert_eq!(seg.useful_bytes, 8192.0);
        assert_eq!(seg.sectors, 256);
        assert!((seg.coalescing_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_reads_are_uncoalesced() {
        let mut m = mem();
        let n = 32 * 16usize;
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let buf = m.alloc_from_slice(&src, 0).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        let mut sum = 0.0;
        ctx.parallel_for("gather", 32, |i, lane| {
            // Stride of 16 elements = 128 bytes: every lane its own line.
            sum += lane.ld_idx::<f64>(buf, i * 16)?;
            Ok(())
        })
        .unwrap();
        let trace = ctx.finish();
        let seg = &trace.phases[1].warps[0];
        assert_eq!(seg.sectors, 32);
        assert!(seg.coalescing_efficiency() < 0.3);
        assert_eq!(sum, (0..32).map(|i| (i * 16) as f64).sum::<f64>());
    }

    #[test]
    fn serial_only_occupies_warp_zero() {
        let mut m = mem();
        let buf = m.alloc(64).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 256, 0, 48 << 10);
        ctx.serial("init", |lane| {
            lane.st::<u64>(buf, 42)?;
            lane.work(100.0);
            Ok(())
        })
        .unwrap();
        let trace = ctx.finish();
        let phase = &trace.phases[1];
        assert!(phase.warps[0].insts > 100.0);
        for w in &phase.warps[1..] {
            assert!(w.is_empty());
        }
    }

    #[test]
    fn reduce_returns_sum_and_adds_phase() {
        let mut m = mem();
        let src: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let buf = m.alloc_from_slice(&src, 0).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 64, 0, 48 << 10);
        let total = ctx
            .parallel_for_reduce_f64("sum", 500, |i, lane| lane.ld_idx::<f64>(buf, i))
            .unwrap();
        assert_eq!(total, (0..500).map(|i| i as f64).sum::<f64>());
        let trace = ctx.finish();
        assert_eq!(trace.phases.len(), 3); // prologue, loop, reduce
    }

    #[test]
    fn region_tags_flow_into_trace() {
        let mut m = mem();
        let a = m
            .alloc_tagged(8 * 64, gpu_mem::Backing::Materialized, 5)
            .unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 5, 48 << 10);
        ctx.parallel_for("touch", 64, |i, lane| lane.st_idx::<f64>(a, i, 0.0))
            .unwrap();
        let trace = ctx.finish();
        assert_eq!(trace.region_tags(), vec![5]);
        let fps = trace.region_footprints();
        assert_eq!(fps.len(), 1);
        assert!(fps[0].1 >= 8 * 64);
    }

    #[test]
    fn access_fault_poisons_team() {
        let mut m = mem();
        let buf = m.alloc(8).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        let err = ctx
            .parallel_for("oob", 64, |i, lane| lane.st_idx::<f64>(buf, i, 0.0))
            .unwrap_err();
        assert!(matches!(err, KernelError::Access(_)));
        // Subsequent regions refuse to run.
        assert!(ctx.serial("after", |_| Ok(())).is_err());
    }

    #[test]
    fn bank_conflict_degree_cases() {
        // Conflict-free: 32 consecutive 4-byte words.
        let stride1: Vec<u32> = (0..32).map(|l| l * 4).collect();
        assert_eq!(bank_conflict_degree(&stride1), 1);
        // 2-way: stride of 2 words folds lanes 0/16, 1/17, … per bank.
        let stride2: Vec<u32> = (0..32).map(|l| l * 8).collect();
        assert_eq!(bank_conflict_degree(&stride2), 2);
        // Worst case: all lanes hit distinct words of one bank.
        let same_bank: Vec<u32> = (0..32).map(|l| l * 128).collect();
        assert_eq!(bank_conflict_degree(&same_bank), 32);
        // Broadcast: identical address does not conflict.
        let broadcast: Vec<u32> = vec![64; 32];
        assert_eq!(bank_conflict_degree(&broadcast), 1);
        assert_eq!(bank_conflict_degree(&[]), 1);
    }

    #[test]
    fn bank_conflicts_charge_issue_work() {
        let run = |stride: u64| {
            let mut m = mem();
            let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
            let buf = ctx.shared_alloc::<u32>(32 * 32).unwrap();
            ctx.parallel_for("sh", 32, |i, lane| {
                lane.sh_ld::<u32>(&buf, (i * stride) as usize)?;
                Ok(())
            })
            .unwrap();
            ctx.finish().total_insts()
        };
        let conflict_free = run(1); // consecutive words
        let conflicted = run(32); // all lanes in bank 0
        assert!(
            conflicted > conflict_free + 30.0,
            "32-way conflict ({conflicted}) must cost more than stride-1 ({conflict_free})"
        );
    }

    #[test]
    fn shared_memory_roundtrip_and_limit() {
        let mut m = mem();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 1024);
        let buf = ctx.shared_alloc::<f64>(16).unwrap();
        ctx.serial("sh", |lane| {
            lane.sh_st(&buf, 3, 7.5)?;
            assert_eq!(lane.sh_ld::<f64>(&buf, 3)?, 7.5);
            Ok(())
        })
        .unwrap();
        assert!(matches!(
            ctx.shared_alloc::<f64>(1024),
            Err(KernelError::SharedMemExhausted { .. })
        ));
        assert_eq!(ctx.shared_bytes_used(), 128);
    }

    #[test]
    fn dev_alloc_inside_kernel() {
        let mut m = mem();
        let mut ctx = TeamCtx::new(&mut m, 2, 4, 32, 9, 48 << 10);
        let p = ctx
            .serial("alloc", |lane| {
                let p = lane.dev_alloc(256)?;
                lane.st::<u32>(p, 123)?;
                Ok(p)
            })
            .unwrap();
        assert_eq!(m.load::<u32>(p).unwrap(), 123);
        assert_eq!(m.region_of(p.0).unwrap().tag, 9);
    }

    #[test]
    fn host_call_requires_stub() {
        let mut m = mem();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        let mut hook = |svc: u32, payload: &[u8]| -> Result<Vec<u8>, String> {
            assert_eq!(svc, 1);
            Ok(payload.to_vec())
        };
        ctx.set_host_call(&mut hook, Some(vec![1]));
        let out = ctx
            .serial("rpc", |lane| {
                // Allowed service echoes.
                let echoed = lane.host_call(1, b"hi")?;
                // Service 2 has no stub.
                assert!(matches!(
                    lane.host_call(2, b"no"),
                    Err(KernelError::HostCallUnavailable { service: 2 })
                ));
                Ok(echoed)
            })
            .unwrap();
        assert_eq!(out, b"hi");
        let trace = ctx.finish();
        assert_eq!(trace.total_rpc_calls(), 1);
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut m = mem();
        let p = m.alloc(8).unwrap();
        m.store::<f64>(p, 10.0).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        ctx.serial("atomic", |lane| {
            assert_eq!(lane.atomic_add_f64(p, 2.5)?, 10.0);
            assert_eq!(lane.atomic_add_f64(p, 2.5)?, 12.5);
            Ok(())
        })
        .unwrap();
        assert_eq!(m.load::<f64>(p).unwrap(), 15.0);
    }

    #[test]
    fn iterations_beyond_lanes_wrap_rounds() {
        let mut m = mem();
        let buf = m.alloc(8 * 100).unwrap();
        let mut ctx = TeamCtx::new(&mut m, 0, 1, 32, 0, 48 << 10);
        // 100 iterations on 32 lanes = 4 rounds (ceil).
        ctx.parallel_for("fill", 100, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))
            .unwrap();
        assert_eq!(m.load::<f64>(buf.elem_add::<f64>(99)).unwrap(), 99.0);
    }
}
