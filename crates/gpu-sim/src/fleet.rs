//! A fleet of simulated devices built from a [`DeviceRegistry`].
//!
//! Each device owns its own memory, transfer engine and timing state, so
//! kernels launched on different fleet members are fully independent —
//! the property the multi-device sharding layer relies on to run one
//! driver thread per device.

use crate::kernel::Gpu;
use gpu_arch::{DeviceRegistry, GpuSpec};

/// An ordered collection of independent simulated GPUs.
pub struct DeviceFleet {
    gpus: Vec<Gpu>,
}

impl DeviceFleet {
    /// Instantiate one [`Gpu`] per registry entry.
    pub fn from_registry(registry: &DeviceRegistry) -> Self {
        Self {
            gpus: registry.devices.iter().cloned().map(Gpu::new).collect(),
        }
    }

    /// `count` identical devices of the given spec.
    pub fn homogeneous(spec: GpuSpec, count: u32) -> Self {
        Self::from_registry(&DeviceRegistry::homogeneous(spec, count))
    }

    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    pub fn gpu(&self, device: usize) -> &Gpu {
        &self.gpus[device]
    }

    pub fn gpu_mut(&mut self, device: usize) -> &mut Gpu {
        &mut self.gpus[device]
    }

    pub fn spec(&self, device: usize) -> &GpuSpec {
        &self.gpus[device].spec
    }

    /// Split the fleet into owned per-device GPUs (for handing one to each
    /// driver thread). The inverse of [`DeviceFleet::from_gpus`].
    pub fn into_gpus(self) -> Vec<Gpu> {
        self.gpus
    }

    pub fn from_gpus(gpus: Vec<Gpu>) -> Self {
        Self { gpus }
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Gpu> {
        self.gpus.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_instantiates_independent_devices() {
        let reg = DeviceRegistry::parse("a100,a100*0.5").unwrap();
        let mut fleet = DeviceFleet::from_registry(&reg);
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.spec(0).sm_count, 108);
        assert_eq!(fleet.spec(1).sm_count, 54);

        // Allocating on one device must not disturb the other.
        let before = fleet.gpu(1).mem.free_bytes();
        fleet.gpu_mut(0).mem.alloc(4096).unwrap();
        assert_eq!(fleet.gpu(1).mem.free_bytes(), before);
    }
}
