use serde::{Deserialize, Serialize};

/// Everything the simulator measured about one kernel launch.
///
/// `sim_time_s` is the quantity the paper's evaluation uses (`T1`, `TN`);
/// the remaining fields explain *why* the kernel took that long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    pub kernel_name: String,
    /// Kernel duration in device cycles, excluding launch overhead.
    pub kernel_cycles: f64,
    /// End-to-end simulated seconds: launch overhead + kernel.
    pub sim_time_s: f64,
    /// Number of thread blocks launched.
    pub blocks: u32,
    /// Threads per block (the loader's thread limit, warp-rounded).
    pub threads_per_block: u32,
    /// Scheduling waves (1 = every block ran concurrently).
    pub waves: u32,
    /// Theoretical occupancy fraction.
    pub occupancy: f64,
    /// Total warp instructions issued.
    pub total_insts: f64,
    /// Total 32-byte DRAM sector transactions.
    pub total_sectors: u64,
    /// Bytes requested by the program.
    pub useful_bytes: f64,
    /// Bytes moved after coalescing (before L2 filtering).
    pub moved_bytes: f64,
    /// Overall coalescing efficiency (useful / moved).
    pub coalescing_efficiency: f64,
    /// Modeled L2 hit fraction.
    pub l2_hit: f64,
    /// DRAM efficiency after region interference.
    pub dram_efficiency: f64,
    /// Distinct heap-region tags active (≈ ensemble instances).
    pub active_region_tags: u32,
    /// Time-integrated issue-slot utilization, [0, 1].
    pub issue_utilization: f64,
    /// Time-integrated DRAM utilization vs. raw peak, [0, 1].
    pub dram_utilization: f64,
    /// Host RPC round trips made by device code.
    pub rpc_calls: u64,
    /// Per-block completion times in cycles.
    pub block_end_cycles: Vec<f64>,
}

impl SimReport {
    /// Pretty one-line summary for logs and example binaries.
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.3} ms | {} blocks × {} thr | occ {:.0}% | coal {:.0}% | L2 {:.0}% | DRAM util {:.0}%",
            self.kernel_name,
            self.sim_time_s * 1e3,
            self.blocks,
            self.threads_per_block,
            self.occupancy * 100.0,
            self.coalescing_efficiency * 100.0,
            self.l2_hit * 100.0,
            self.dram_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_name_and_blocks() {
        let r = SimReport {
            kernel_name: "xsbench".into(),
            kernel_cycles: 1e6,
            sim_time_s: 7.1e-4,
            blocks: 64,
            threads_per_block: 32,
            waves: 1,
            occupancy: 0.5,
            total_insts: 1e6,
            total_sectors: 1000,
            useful_bytes: 32_000.0,
            moved_bytes: 32_000.0,
            coalescing_efficiency: 1.0,
            l2_hit: 0.1,
            dram_efficiency: 0.9,
            active_region_tags: 64,
            issue_utilization: 0.2,
            dram_utilization: 0.4,
            rpc_calls: 0,
            block_end_cycles: vec![],
        };
        let s = r.summary();
        assert!(s.contains("xsbench"));
        assert!(s.contains("64 blocks"));
    }
}
