//! Trace-driven SIMT GPU performance simulator.
//!
//! The simulator runs a kernel in two phases:
//!
//! 1. **Functional execution** — every team (thread block) runs its body as
//!    real Rust code against simulated device memory through a [`TeamCtx`].
//!    OpenMP-style `parallel_for` regions are executed with a static,
//!    chunk-1 schedule over the team's threads; each warp's memory accesses
//!    are coalesced into 32-byte sector transactions and folded, together
//!    with instruction counts, into a compact *segment trace* (one segment
//!    per warp per parallel phase).
//! 2. **Timing simulation** — the segment traces replay through a fluid-rate
//!    event simulation of the device: per-SM issue slots and device-wide
//!    DRAM bandwidth are shared max-min fairly among resident warps, each
//!    warp additionally capped by its memory-level-parallelism window.
//!    Blocks are placed on SMs wave-by-wave according to the occupancy
//!    calculation; intra-team barriers separate phases.
//!
//! The fidelity target is the one that matters for the ensemble-execution
//! paper: *relative* kernel times as the number of concurrent teams, the
//! thread limit, and the memory behaviour vary. See `DESIGN.md` §4 for the
//! model derivation and its mapping to the paper's observations.

mod ctx;
mod fleet;
mod kernel;
mod report;
mod timing;
mod trace;

pub use ctx::{HostCallHook, KernelError, LaneCtx, SharedBuf, TeamCtx};
pub use fleet::DeviceFleet;
pub use kernel::{
    Gpu, InjectedTeamFault, KernelSpec, LaunchResult, SimError, TeamOutcome, TeamSummary,
};
pub use report::SimReport;
pub use timing::{
    simulate_timing, BlockSchedule, PhaseSpan, ScheduleDetail, StallAttribution, StallBuckets,
    TimingInputs, TimingParams, TimingResult, UtilizationSample, UtilizationTimeline,
};
pub use trace::{BlockTrace, MixedSeg, Phase, TeamTrace};
