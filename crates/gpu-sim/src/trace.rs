use serde::{Deserialize, Serialize};

/// One warp's aggregated work for one parallel phase.
///
/// A *mixed segment* carries both instruction work and memory work; the
/// timing engine drains the two concurrently (loop iterations interleave
/// arithmetic and loads, and hardware overlaps them through pipelining and
/// MLP), so a segment's duration is governed by whichever resource binds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MixedSeg {
    /// Warp instructions to issue.
    pub insts: f64,
    /// Bytes that must move from DRAM (after coalescing; before L2).
    pub moved_bytes: f64,
    /// Bytes the program asked for (coalescing-efficiency numerator).
    pub useful_bytes: f64,
    /// 32-byte sector transactions.
    pub sectors: u64,
    /// Distinct heap-region tags touched (deduplicated, sorted).
    pub region_tags: Vec<u32>,
    /// Distinct region start addresses with their lengths, for the L2
    /// footprint estimate (deduplicated, sorted by start).
    pub region_footprints: Vec<(u64, u64)>,
    /// Host RPC round trips issued from this warp.
    pub rpc_calls: u64,
    /// Device-heap allocator operations (alloc/reserve/free) issued from
    /// this warp's serial sections.
    pub alloc_ops: f64,
    /// The subset of `alloc_ops` served from a per-team free list (exact
    /// size-class reuse) — charged a fraction of the full allocator cost.
    pub alloc_fast_ops: f64,
    /// Extra warp-visible latency cycles charged to this segment before any
    /// of its work drains. Organically-built traces always carry 0; fault
    /// injection uses it to model a hung instance (the cycles are attributed
    /// to the RPC stall bucket, like the host-side latency they imitate).
    pub stall_cycles: f64,
}

impl MixedSeg {
    /// Whether this segment represents any work at all.
    pub fn is_empty(&self) -> bool {
        self.insts == 0.0
            && self.moved_bytes == 0.0
            && self.rpc_calls == 0
            && self.stall_cycles == 0.0
    }

    /// Fold another segment's totals into this one.
    pub fn merge(&mut self, other: &MixedSeg) {
        self.insts += other.insts;
        self.moved_bytes += other.moved_bytes;
        self.useful_bytes += other.useful_bytes;
        self.sectors += other.sectors;
        self.rpc_calls += other.rpc_calls;
        self.alloc_ops += other.alloc_ops;
        self.alloc_fast_ops += other.alloc_fast_ops;
        self.stall_cycles += other.stall_cycles;
        for &t in &other.region_tags {
            self.add_region_tag(t);
        }
        for &(s, l) in &other.region_footprints {
            self.add_region_footprint(s, l);
        }
    }

    pub fn add_region_tag(&mut self, tag: u32) {
        if let Err(pos) = self.region_tags.binary_search(&tag) {
            self.region_tags.insert(pos, tag);
        }
    }

    pub fn add_region_footprint(&mut self, start: u64, len: u64) {
        if let Err(pos) = self
            .region_footprints
            .binary_search_by_key(&start, |&(s, _)| s)
        {
            self.region_footprints.insert(pos, (start, len));
        }
    }

    /// Coalescing efficiency of this segment's traffic.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.moved_bytes == 0.0 {
            1.0
        } else {
            self.useful_bytes / self.moved_bytes
        }
    }
}

/// One barrier-delimited phase of a team: one segment per warp.
///
/// Warps that did nothing in the phase (e.g. the serial part of `main`,
/// where only warp 0 works) carry empty segments and arrive at the barrier
/// immediately.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    pub warps: Vec<MixedSeg>,
    /// Human-readable label for diagnostics ("serial", "parallel_for", ...).
    pub label: String,
}

impl Phase {
    pub fn total_insts(&self) -> f64 {
        self.warps.iter().map(|w| w.insts).sum()
    }

    pub fn total_moved_bytes(&self) -> f64 {
        self.warps.iter().map(|w| w.moved_bytes).sum()
    }
}

/// The complete trace of one team (one application instance under ensemble
/// execution): an ordered list of barrier-delimited phases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TeamTrace {
    pub phases: Vec<Phase>,
    /// Number of warps this team occupies.
    pub warp_count: u32,
}

impl TeamTrace {
    pub fn total_insts(&self) -> f64 {
        self.phases.iter().map(|p| p.total_insts()).sum()
    }

    pub fn total_moved_bytes(&self) -> f64 {
        self.phases.iter().map(|p| p.total_moved_bytes()).sum()
    }

    pub fn total_useful_bytes(&self) -> f64 {
        self.phases
            .iter()
            .flat_map(|p| &p.warps)
            .map(|w| w.useful_bytes)
            .sum()
    }

    pub fn total_sectors(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.warps)
            .map(|w| w.sectors)
            .sum()
    }

    pub fn total_rpc_calls(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.warps)
            .map(|w| w.rpc_calls)
            .sum()
    }

    /// Distinct region tags across all phases.
    pub fn region_tags(&self) -> Vec<u32> {
        let mut tags: Vec<u32> = self
            .phases
            .iter()
            .flat_map(|p| &p.warps)
            .flat_map(|w| w.region_tags.iter().copied())
            .collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Distinct region footprints across all phases.
    pub fn region_footprints(&self) -> Vec<(u64, u64)> {
        let mut fps: Vec<(u64, u64)> = self
            .phases
            .iter()
            .flat_map(|p| &p.warps)
            .flat_map(|w| w.region_footprints.iter().copied())
            .collect();
        fps.sort_unstable();
        fps.dedup();
        fps
    }
}

/// The trace of one thread block. Under the default instance mapping a block
/// holds exactly one team; under the §3.1 packed `(N/M, M, 1)` mapping it
/// holds `M` independent teams that synchronize separately.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockTrace {
    pub teams: Vec<TeamTrace>,
    /// Static shared memory the block requested, bytes.
    pub shared_mem_bytes: u64,
}

impl BlockTrace {
    pub fn warp_count(&self) -> u32 {
        self.teams.iter().map(|t| t.warp_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_dedups() {
        let mut a = MixedSeg {
            insts: 10.0,
            moved_bytes: 64.0,
            useful_bytes: 32.0,
            sectors: 2,
            region_tags: vec![1, 3],
            region_footprints: vec![(100, 10)],
            rpc_calls: 1,
            alloc_ops: 2.0,
            alloc_fast_ops: 1.0,
            stall_cycles: 0.0,
        };
        let b = MixedSeg {
            insts: 5.0,
            moved_bytes: 32.0,
            useful_bytes: 32.0,
            sectors: 1,
            region_tags: vec![2, 3],
            region_footprints: vec![(100, 10), (200, 20)],
            rpc_calls: 0,
            alloc_ops: 3.0,
            alloc_fast_ops: 0.0,
            stall_cycles: 0.5,
        };
        a.merge(&b);
        assert_eq!(a.insts, 15.0);
        assert_eq!(a.sectors, 3);
        assert_eq!(a.region_tags, vec![1, 2, 3]);
        assert_eq!(a.region_footprints, vec![(100, 10), (200, 20)]);
        assert_eq!(a.rpc_calls, 1);
        assert_eq!(a.alloc_ops, 5.0);
        assert_eq!(a.alloc_fast_ops, 1.0);
        assert_eq!(a.stall_cycles, 0.5);
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let seg = MixedSeg {
            moved_bytes: 128.0,
            useful_bytes: 64.0,
            ..Default::default()
        };
        assert!((seg.coalescing_efficiency() - 0.5).abs() < 1e-12);
        assert!((MixedSeg::default().coalescing_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn team_trace_rollups() {
        let seg = |i: f64, b: f64| MixedSeg {
            insts: i,
            moved_bytes: b,
            useful_bytes: b,
            sectors: (b / 32.0) as u64,
            region_tags: vec![0],
            region_footprints: vec![(0x1000, 4096)],
            rpc_calls: 2,
            alloc_ops: 0.0,
            alloc_fast_ops: 0.0,
            stall_cycles: 0.0,
        };
        let t = TeamTrace {
            phases: vec![
                Phase {
                    warps: vec![seg(10.0, 64.0), seg(20.0, 32.0)],
                    label: "p0".into(),
                },
                Phase {
                    warps: vec![seg(5.0, 0.0)],
                    label: "p1".into(),
                },
            ],
            warp_count: 2,
        };
        assert_eq!(t.total_insts(), 35.0);
        assert_eq!(t.total_moved_bytes(), 96.0);
        assert_eq!(t.total_rpc_calls(), 6);
        assert_eq!(t.region_tags(), vec![0]);
        assert_eq!(t.region_footprints(), vec![(0x1000, 4096)]);
    }
}
