use crate::trace::BlockTrace;
use gpu_arch::{occupancy, GpuSpec, LaunchConfig};
use serde::{Deserialize, Serialize};

/// Tunables of the timing engine that are not part of the hardware spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Warp-visible latency of one host RPC round trip, in core cycles
    /// (device→host doorbell, host service, device resume).
    pub rpc_cycles_per_call: f64,
    /// Maximum L2 hit fraction achievable when the active footprint fits in
    /// the cache (compulsory misses and streaming keep it below 1).
    pub l2_hit_max: f64,
    /// Warp-visible latency of one device-heap allocator operation that
    /// takes the global first-fit path, in core cycles. Operations served
    /// from a per-team free list are charged a quarter of this (row-local
    /// reuse, no global-lock traffic). 0 (the default) disables the
    /// allocator latency channel entirely and keeps every timing outcome
    /// bit-identical to the five-bucket model.
    pub alloc_cycles_per_op: f64,
    /// Contention slope of the allocator latency: each *additional*
    /// concurrently-resident instance heap (distinct region tag) scales
    /// the per-operation latency by `1 + alloc_contention × (heaps − 1)`
    /// — more teams hammering the global allocator serialize on it.
    pub alloc_contention: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            rpc_cycles_per_call: 20_000.0,
            l2_hit_max: 0.95,
            alloc_cycles_per_op: 0.0,
            alloc_contention: 0.0,
        }
    }
}

/// Everything the timing simulation needs.
pub struct TimingInputs<'a> {
    pub spec: &'a GpuSpec,
    pub blocks: &'a [BlockTrace],
    pub params: &'a TimingParams,
    /// Scale factor applied to the measured data footprint before the L2
    /// model. Applications that run functionally on scaled-down data but
    /// model a paper-scale working set pass `paper_bytes / scaled_bytes`.
    pub footprint_multiplier: f64,
    /// Record a [`ScheduleDetail`] timeline (block placement, per-phase
    /// spans, wave starts) alongside the aggregate result. Off by default:
    /// the timeline costs memory proportional to blocks × phases and is
    /// only needed when exporting traces.
    pub collect_detail: bool,
    /// Attribute every simulated interval to an exclusive stall bucket
    /// ([`TimingResult::stalls`]). Off by default; like `collect_detail`
    /// this is pure bookkeeping and never changes a timing outcome.
    pub collect_stalls: bool,
    /// Watchdog: per-block cycle budget, measured from the block's
    /// placement on an SM. A block still running past its budget is killed
    /// at the deadline — its unfinished teams are recorded in
    /// [`TimingResult::timed_out_teams`] and the block's SM slot is freed so
    /// queued blocks can proceed. `None` (the default) disables the
    /// watchdog entirely and leaves every timing outcome bit-identical.
    pub cycle_budget: Option<f64>,
    /// Emit a periodic [`UtilizationTimeline`] sample every this many
    /// cycles ([`TimingResult::timeline`]). Off (`None`) by default; like
    /// `collect_detail` this is pure bookkeeping — the sampler splits each
    /// fluid-rate interval across window boundaries *analytically* (rates
    /// are constant within an interval, so the split is exact) and never
    /// clamps or subdivides an event step, leaving every timing outcome
    /// bit-identical.
    pub sample_interval: Option<f64>,
}

/// Where and when one block ran, for timeline export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSchedule {
    pub block: u32,
    /// SM the block was placed on (least-loaded placement).
    pub sm: u32,
    /// Scheduling wave the placement belonged to, 0-based.
    pub wave: u32,
    pub start_cycle: f64,
    pub end_cycle: f64,
    /// Stall-cycle decomposition of the block's lifetime (queue delay plus
    /// SM residence), present when [`TimingInputs::collect_stalls`] was
    /// also set. The buckets sum to `end_cycle`.
    pub stalls: Option<StallBuckets>,
}

/// One barrier-delimited team phase on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    pub block: u32,
    pub team: u32,
    /// Index into the team's phase list.
    pub phase: u32,
    /// The phase's diagnostic label ("prologue", "parallel_for", …).
    pub label: String,
    pub start_cycle: f64,
    pub end_cycle: f64,
    /// Host round trips issued in this phase; each stalls its warp for
    /// [`TimingParams::rpc_cycles_per_call`] cycles.
    pub rpc_calls: u64,
}

/// The full scheduling timeline of one kernel, recorded when
/// [`TimingInputs::collect_detail`] is set. Collecting it does not change
/// any timing outcome — it only observes the event loop.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDetail {
    /// One entry per block, in placement order.
    pub blocks: Vec<BlockSchedule>,
    /// Every team phase with its position on the timeline.
    pub phase_spans: Vec<PhaseSpan>,
    /// Cycle at which each scheduling wave began (wave 0 starts at 0).
    pub wave_starts: Vec<f64>,
}

impl ScheduleDetail {
    /// Number of scheduling waves observed (matches
    /// [`TimingResult::waves`] for non-degenerate launches).
    pub fn waves(&self) -> u32 {
        self.wave_starts.len() as u32
    }

    /// The block that bounded the kernel: the last one to finish, with
    /// ties broken toward the lowest block id (placement order). `None`
    /// only for an empty schedule.
    pub fn critical_block(&self) -> Option<&BlockSchedule> {
        self.blocks.iter().min_by(|a, b| {
            b.end_cycle
                .partial_cmp(&a.end_cycle)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.block.cmp(&b.block))
        })
    }

    /// The kernel's critical chain, in start order: walk back from
    /// [`ScheduleDetail::critical_block`] through SM-slot dependencies.
    /// Each hop's predecessor is the latest-finishing *earlier* block on
    /// the same SM whose `end_cycle` does not exceed the hop's
    /// `start_cycle` — the completion that freed the slot the hop was
    /// waiting for. The walk stops at a block that started with the wave
    /// that had a free slot from cycle 0.
    ///
    /// The chain tiles the kernel: summing each hop's residence
    /// (`end - start`) plus its scheduling gap (`start` minus the
    /// predecessor's `end`) telescopes to the critical block's
    /// `end_cycle`, i.e. the kernel cycles.
    pub fn critical_chain(&self) -> Vec<&BlockSchedule> {
        let mut chain: Vec<&BlockSchedule> = Vec::new();
        let mut cur = match self.critical_block() {
            Some(b) => b,
            None => return chain,
        };
        let mut visited = vec![false; self.blocks.len()];
        loop {
            chain.push(cur);
            if let Some(i) = self.blocks.iter().position(|b| b.block == cur.block) {
                visited[i] = true;
            }
            let pred = self
                .blocks
                .iter()
                .enumerate()
                .filter(|&(i, b)| {
                    !visited[i]
                        && b.sm == cur.sm
                        && b.end_cycle <= cur.start_cycle
                        && b.start_cycle < cur.start_cycle
                })
                .min_by(|(_, a), (_, b)| {
                    b.end_cycle
                        .partial_cmp(&a.end_cycle)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.block.cmp(&b.block))
                });
            match pred {
                Some((_, p)) => cur = p,
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Per-wave `(start_cycle, end_cycle, blocks)` summary — the rows of
    /// a wave-level Gantt chart. `end_cycle` is the last completion among
    /// the wave's blocks (0 for a wave that placed no block, which does
    /// not happen in practice).
    pub fn wave_spans(&self) -> Vec<(f64, f64, u32)> {
        let mut spans: Vec<(f64, f64, u32)> =
            self.wave_starts.iter().map(|&s| (s, s, 0u32)).collect();
        for b in &self.blocks {
            if let Some(w) = spans.get_mut(b.wave as usize) {
                w.1 = w.1.max(b.end_cycle);
                w.2 += 1;
            }
        }
        spans
    }
}

/// Exclusive stall-cycle buckets (DESIGN.md §4.2): where a kernel's — or
/// one block's — simulated cycles went. Every event-loop interval is
/// charged to exactly one bucket, the resource that bounded progress over
/// that interval, so the buckets sum to the attributed total:
///
/// * `compute` — issue-slot throughput was the binding resource;
/// * `dram_bw` — the fair device-wide DRAM bandwidth share was binding
///   (bandwidth saturation);
/// * `mlp` — the per-warp MLP window was binding (latency-bound memory:
///   bandwidth was available but the warp could not keep enough requests
///   in flight);
/// * `rpc` — a host round-trip latency was binding;
/// * `alloc` — a device-heap allocator operation's latency was binding
///   (global-path lock traffic and row-locality misses; zero unless
///   [`TimingParams::alloc_cycles_per_op`] is set);
/// * `wave_tail` — occupancy loss: the device ran below its full block
///   complement (kernel-level), or the block sat queued waiting for an SM
///   slot (block-level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallBuckets {
    pub compute: f64,
    pub dram_bw: f64,
    pub mlp: f64,
    pub rpc: f64,
    pub alloc: f64,
    pub wave_tail: f64,
}

/// Which bucket an interval is charged to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StallClass {
    Compute,
    DramBw,
    Mlp,
    Rpc,
    Alloc,
    WaveTail,
}

impl StallBuckets {
    const NAMES: [&'static str; 6] = ["compute", "dram_bw", "mlp", "rpc", "alloc", "wave_tail"];

    fn as_array(&self) -> [f64; 6] {
        [
            self.compute,
            self.dram_bw,
            self.mlp,
            self.rpc,
            self.alloc,
            self.wave_tail,
        ]
    }

    /// Sum of all buckets; equals the attributed cycle total.
    pub fn total(&self) -> f64 {
        self.compute + self.dram_bw + self.mlp + self.rpc + self.alloc + self.wave_tail
    }

    /// Name of the largest bucket (ties break in declaration order) —
    /// the one-word answer to "what was this kernel bound by?".
    pub fn dominant(&self) -> &'static str {
        let vals = self.as_array();
        let mut best = 0usize;
        for (i, v) in vals.iter().enumerate() {
            if *v > vals[best] {
                best = i;
            }
        }
        Self::NAMES[best]
    }

    /// `(name, cycles)` pairs in declaration order, for table rendering.
    pub fn named(&self) -> [(&'static str, f64); 6] {
        let v = self.as_array();
        [
            (Self::NAMES[0], v[0]),
            (Self::NAMES[1], v[1]),
            (Self::NAMES[2], v[2]),
            (Self::NAMES[3], v[3]),
            (Self::NAMES[4], v[4]),
            (Self::NAMES[5], v[5]),
        ]
    }

    fn add(&mut self, class: StallClass, dt: f64) {
        match class {
            StallClass::Compute => self.compute += dt,
            StallClass::DramBw => self.dram_bw += dt,
            StallClass::Mlp => self.mlp += dt,
            StallClass::Rpc => self.rpc += dt,
            StallClass::Alloc => self.alloc += dt,
            StallClass::WaveTail => self.wave_tail += dt,
        }
    }

    /// Absorb the floating-point accumulation residual `target - total()`
    /// (ulp-scale by construction: the buckets partition the very `dt`
    /// values whose sequential sum is `target`) into the largest bucket,
    /// until the buckets sum *bit-exactly* to `target`.
    fn reconcile(&mut self, target: f64) {
        // Stage 1: charge the bulk residual to the largest bucket.
        for _ in 0..4 {
            let residual = target - self.total();
            if residual == 0.0 {
                return;
            }
            debug_assert!(
                residual.abs() <= 1e-6 * target.abs().max(1.0),
                "stall residual {residual} vs target {target}"
            );
            *self.slot_mut(self.largest_idx()) += residual;
        }
        // Stage 2: the additions above themselves round, so a sub-ulp gap
        // can survive. Walk the largest bucket one ulp at a time toward
        // the target. When the largest bucket shares the total's binade,
        // its unit step can straddle the target forever on a
        // round-to-even tie — so after each failed walk, shift the
        // second-largest bucket (strictly finer ulp, since it is below
        // half the total) one step to break the tie.
        for _ in 0..8 {
            for _ in 0..8 {
                let diff = target - self.total();
                if diff == 0.0 {
                    return;
                }
                Self::nudge(self.slot_mut(self.largest_idx()), diff);
            }
            let diff = target - self.total();
            if diff == 0.0 {
                return;
            }
            match self.second_idx() {
                Some(i) => Self::nudge(self.slot_mut(i), diff),
                None => return,
            }
        }
    }

    /// Move `slot` one ulp in the direction of `diff` (never below zero).
    fn nudge(slot: &mut f64, diff: f64) {
        let bits = slot.to_bits();
        if diff > 0.0 {
            *slot = f64::from_bits(bits + 1);
        } else if *slot > 0.0 {
            *slot = f64::from_bits(bits - 1);
        }
    }

    fn largest_idx(&self) -> usize {
        let vals = self.as_array();
        let mut best = 0usize;
        for (i, v) in vals.iter().enumerate() {
            if *v > vals[best] {
                best = i;
            }
        }
        best
    }

    /// Largest non-zero bucket other than [`Self::largest_idx`].
    fn second_idx(&self) -> Option<usize> {
        let vals = self.as_array();
        let best = self.largest_idx();
        let mut second: Option<usize> = None;
        for (i, v) in vals.iter().enumerate() {
            if i != best && *v > 0.0 && second.is_none_or(|s| *v > vals[s]) {
                second = Some(i);
            }
        }
        second
    }

    fn slot_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.compute,
            1 => &mut self.dram_bw,
            2 => &mut self.mlp,
            3 => &mut self.rpc,
            4 => &mut self.alloc,
            _ => &mut self.wave_tail,
        }
    }
}

/// Stall-cycle attribution of one kernel, recorded when
/// [`TimingInputs::collect_stalls`] is set. Buckets are exclusive:
/// [`StallBuckets::total`] of `kernel` equals [`TimingResult::cycles`],
/// and each block's buckets sum to its completion cycle (time spent
/// queued for an SM slot counts as that block's `wave_tail`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StallAttribution {
    /// Device-wide decomposition of the kernel's critical path.
    pub kernel: StallBuckets,
    /// Per-block decomposition, indexed like the input blocks.
    pub blocks: Vec<StallBuckets>,
}

/// One periodic utilization sample ([`TimingInputs::sample_interval`]).
///
/// Rates are time-averaged over the sample window `[cycle − window,
/// cycle)`; counts (`active_teams`, `resident_blocks`, `occupancy`) are
/// instantaneous at the window's closing edge. The stall buckets hold the
/// window's cycle decomposition (they sum to the window length) when
/// [`TimingInputs::collect_stalls`] was also set, and stay zero otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Cycle at which the window closed.
    pub cycle: f64,
    /// Teams still making progress on placed blocks.
    pub active_teams: u32,
    /// Work-bearing blocks resident on SMs.
    pub resident_blocks: u32,
    /// `resident_blocks` over the device's full block complement, [0, 1].
    pub occupancy: f64,
    /// Window-averaged issue-slot utilization across the device, [0, 1].
    pub issue_rate: f64,
    /// Window-averaged DRAM utilization (vs. raw peak), [0, 1].
    pub dram_rate: f64,
    /// Window stall-cycle decomposition (sums to the window length when
    /// stall collection ran; all-zero otherwise).
    pub stall: StallBuckets,
}

/// The periodic utilization time series of one kernel, recorded when
/// [`TimingInputs::sample_interval`] is set. Every window is exactly
/// `interval` cycles long except the last, which closes at kernel end.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTimeline {
    /// Sampling interval in core cycles.
    pub interval: f64,
    /// Samples in window order; `cycle` is strictly increasing.
    pub samples: Vec<UtilizationSample>,
}

/// Output of the timing simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Kernel duration in core cycles (excluding launch overhead).
    pub cycles: f64,
    /// Completion cycle of each block, indexed like the input.
    pub block_end_cycles: Vec<f64>,
    /// DRAM efficiency applied (row-locality interference).
    pub dram_efficiency: f64,
    /// Modeled L2 hit fraction.
    pub l2_hit: f64,
    /// Distinct heap-region tags streamed concurrently.
    pub active_region_tags: u32,
    /// Time-integrated issue-slot utilization across the device, [0, 1].
    pub issue_utilization: f64,
    /// Time-integrated DRAM utilization (vs. raw peak), [0, 1].
    pub dram_utilization: f64,
    /// Scheduling waves required by occupancy.
    pub waves: u32,
    /// Timeline detail, present iff [`TimingInputs::collect_detail`] was
    /// set. Serialized as `null` otherwise.
    pub detail: Option<ScheduleDetail>,
    /// Stall-cycle attribution, present iff
    /// [`TimingInputs::collect_stalls`] was set.
    pub stalls: Option<StallAttribution>,
    /// Teams killed by the [`TimingInputs::cycle_budget`] watchdog, as
    /// `(block index, team index within the block)` pairs in kill order.
    /// Empty whenever the watchdog is disabled or never fired.
    pub timed_out_teams: Vec<(u32, u32)>,
    /// Periodic utilization samples, present iff
    /// [`TimingInputs::sample_interval`] was set.
    pub timeline: Option<UtilizationTimeline>,
}

const EPS: f64 = 1e-9;

#[derive(Debug, Clone, Copy, PartialEq)]
enum WarpPhase {
    /// Draining its current segment.
    Running,
    /// Finished its segment, waiting at the team barrier.
    AtBarrier,
    /// Team finished all phases.
    Done,
}

struct WarpState {
    block: usize,
    team: usize,
    warp: usize,
    sm: usize,
    insts_left: f64,
    bytes_left: f64,
    latency_left: f64,
    /// Outstanding device-heap allocator latency: global-path operations
    /// pay the full contention-scaled per-op cost, free-list hits a
    /// quarter of it. A separate channel from `latency_left` so the stall
    /// attribution can tell allocator serialization apart from RPC.
    alloc_left: f64,
    /// Fraction of the warp's MLP window usable by this segment: coalesced
    /// streams keep the full window in flight; dependent, scattered lookup
    /// chains (low coalescing efficiency) cannot pipeline as deeply.
    mlp_factor: f64,
    phase: WarpPhase,
}

impl WarpState {
    fn load_segment(
        &mut self,
        blocks: &[BlockTrace],
        phase_idx: usize,
        dram_discount: f64,
        params: &TimingParams,
        alloc_scale: f64,
    ) {
        let seg = &blocks[self.block].teams[self.team].phases[phase_idx].warps[self.warp];
        self.insts_left = seg.insts;
        self.bytes_left = seg.moved_bytes * dram_discount;
        // Injected stalls (`MixedSeg::stall_cycles`, 0 for organic traces)
        // ride the same warp-visible latency channel as RPC round trips.
        self.latency_left = seg.rpc_calls as f64 * params.rpc_cycles_per_call + seg.stall_cycles;
        // Allocator operations: full contention-scaled cost on the global
        // path, a quarter for per-team free-list hits (row-local reuse).
        let slow_ops = (seg.alloc_ops - seg.alloc_fast_ops).max(0.0);
        self.alloc_left = alloc_scale * (slow_ops + 0.25 * seg.alloc_fast_ops);
        self.mlp_factor = 0.4 + 0.6 * seg.coalescing_efficiency();
        self.phase = WarpPhase::Running;
    }

    fn segment_done(&self) -> bool {
        self.insts_left <= EPS
            && self.bytes_left <= EPS
            && self.latency_left <= EPS
            && self.alloc_left <= EPS
    }
}

struct TeamState {
    phase_idx: usize,
    warps_pending: usize,
    done: bool,
}

struct BlockState {
    teams_pending: usize,
    placed: bool,
    /// Cycle the block won an SM slot; the watchdog deadline is
    /// `start_cycle + cycle_budget`.
    start_cycle: f64,
    end_cycle: f64,
}

/// Run the fluid-rate timing simulation over a set of block traces.
///
/// Resource model (see DESIGN.md §4):
/// * each SM issues `issue_slots_per_sm` warp-instructions per cycle,
///   shared equally among its resident warps that still have instructions
///   to issue (per-warp cap: 1 inst/cycle);
/// * DRAM moves `dram_bytes_per_cycle × efficiency(regions)` bytes per
///   cycle, shared equally among warps with outstanding memory, each warp
///   additionally capped by its MLP window;
/// * a segment's instruction, memory and RPC-latency components drain
///   concurrently (ideal intra-warp overlap); the segment completes when
///   all three are exhausted;
/// * warps of a team synchronize at phase boundaries; blocks are placed on
///   SMs up to the occupancy limit and queue for free slots beyond it.
pub fn simulate_timing(inputs: &TimingInputs<'_>) -> TimingResult {
    let spec = inputs.spec;
    let params = inputs.params;
    let blocks = inputs.blocks;
    assert!(!blocks.is_empty(), "timing needs at least one block");

    // --- Static launch-wide factors -------------------------------------
    let max_warps_per_block = blocks.iter().map(|b| b.warp_count()).max().unwrap().max(1);
    let max_shared = blocks.iter().map(|b| b.shared_mem_bytes).max().unwrap();
    let launch = LaunchConfig::linear(blocks.len() as u32, max_warps_per_block * spec.warp_size)
        .with_shared_mem(max_shared);
    let occ = occupancy(spec, &launch).expect("trace built from a validated launch");

    // Distinct heap-region tags across all blocks (the §4.3 interference
    // driver) and the largest per-team data footprint (the L2 driver; L2
    // residency is judged per working set — hot per-instance data keeps
    // hitting even when many instances run, while a working set larger
    // than the cache misses at any instance count).
    let mut tags: Vec<u32> = Vec::new();
    let mut max_team_footprint = 0.0f64;
    for b in blocks {
        for t in &b.teams {
            tags.extend(t.region_tags());
            let fp: u64 = t.region_footprints().iter().map(|&(_, l)| l).sum();
            max_team_footprint = max_team_footprint.max(fp as f64);
        }
    }
    tags.sort_unstable();
    tags.dedup();
    let region_count = (tags.len() as u32).max(1);
    let footprint_bytes: f64 = max_team_footprint * inputs.footprint_multiplier.max(1.0);

    let dram_eff = spec.mem_model.dram_efficiency(region_count);
    let l2_hit = if footprint_bytes <= EPS {
        0.0
    } else {
        let resident = (spec.l2_usable_bytes() / footprint_bytes).min(1.0);
        params.l2_hit_max * resident
    };
    let dram_discount = 1.0 - l2_hit;
    let dram_capacity = spec.dram_bytes_per_cycle() * dram_eff;
    // Row-locality interference lengthens the effective memory latency as
    // more disjoint heaps are streamed (each instance's accesses keep
    // closing the others' row buffers), so it throttles the per-warp MLP
    // rate as well as aggregate bandwidth — the paper's §4.3 observation.
    let mlp_cap = spec.mem_model.warp_mlp_bytes_per_cycle() * dram_eff;
    let issue_cap = spec.issue_slots_per_sm as f64;
    // Allocator latency per global-path operation: the base cost scaled by
    // contention from every *other* concurrently-resident instance heap
    // (distinct region tags serialize on the global allocator lock and
    // evict each other's row-buffer locality). 0 unless the params opt in.
    let alloc_scale =
        params.alloc_cycles_per_op * (1.0 + params.alloc_contention * (region_count - 1) as f64);

    // --- Mutable simulation state ---------------------------------------
    let mut warp_states: Vec<WarpState> = Vec::new();
    let mut team_states: Vec<Vec<TeamState>> = Vec::new();
    let mut block_states: Vec<BlockState> = Vec::new();
    for (bi, b) in blocks.iter().enumerate() {
        let mut teams = Vec::with_capacity(b.teams.len());
        for (ti, t) in b.teams.iter().enumerate() {
            teams.push(TeamState {
                phase_idx: 0,
                warps_pending: t.warp_count as usize,
                done: t.phases.is_empty(),
            });
            for wi in 0..t.warp_count as usize {
                warp_states.push(WarpState {
                    block: bi,
                    team: ti,
                    warp: wi,
                    sm: usize::MAX,
                    insts_left: 0.0,
                    bytes_left: 0.0,
                    latency_left: 0.0,
                    alloc_left: 0.0,
                    mlp_factor: 1.0,
                    phase: WarpPhase::Done, // activated on placement
                });
            }
        }
        block_states.push(BlockState {
            teams_pending: teams.iter().filter(|t| !t.done).count(),
            placed: false,
            start_cycle: 0.0,
            end_cycle: 0.0,
        });
        team_states.push(teams);
    }

    // Index of the first warp-state of each (block, team).
    let mut warp_index: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
    {
        let mut cursor = 0usize;
        for b in blocks {
            let mut per_team = Vec::with_capacity(b.teams.len());
            for t in &b.teams {
                per_team.push(cursor);
                cursor += t.warp_count as usize;
            }
            warp_index.push(per_team);
        }
    }

    let blocks_per_sm = occ.blocks_per_sm.max(1) as usize;
    let mut sm_resident = vec![0usize; spec.sm_count as usize];
    let mut pending_blocks: std::collections::VecDeque<usize> = (0..blocks.len()).collect();

    // Timeline observation state (pure bookkeeping — never feeds back into
    // any rate or event computation above).
    let mut detail: Option<ScheduleDetail> = inputs.collect_detail.then(ScheduleDetail::default);
    let mut phase_start: Vec<Vec<f64>> = if inputs.collect_detail {
        blocks.iter().map(|b| vec![0.0; b.teams.len()]).collect()
    } else {
        Vec::new()
    };
    let wave_capacity = blocks_per_sm * spec.sm_count as usize;
    let mut placed_count = 0usize;

    // Stall-attribution observation state (pure bookkeeping, like
    // `detail`). The device counts as fully fed while `running_blocks`
    // work-bearing blocks are resident; any interval below that is an
    // occupancy/wave-tail loss at the kernel level.
    let blocks_with_work = team_states
        .iter()
        .filter(|ts| ts.iter().any(|t| !t.done))
        .count();
    let full_blocks = blocks_with_work.min(wave_capacity);
    let mut running_blocks = 0usize;
    let mut stalls: Option<StallAttribution> = inputs.collect_stalls.then(|| StallAttribution {
        kernel: StallBuckets::default(),
        blocks: vec![StallBuckets::default(); blocks.len()],
    });
    let mut stall_scratch: Vec<(f64, StallClass)> = Vec::new();

    // Utilization-sampling observation state (pure bookkeeping, like
    // `detail` and `stalls`). One open window accumulates issue/DRAM work
    // and stall cycles; each event-loop interval is split analytically
    // across window boundaries — exact, because fluid rates are constant
    // within an interval — so sampling never subdivides an event step.
    struct Sampler {
        interval: f64,
        /// Cycle the open window started at (the previous boundary).
        win_start: f64,
        /// Warp-instructions issued inside the open window.
        issued: f64,
        /// Bytes moved inside the open window.
        dram: f64,
        /// Stall decomposition of the open window (tracks `stalls`).
        stall: StallBuckets,
        timeline: UtilizationTimeline,
    }
    let mut sampler: Option<Sampler> = inputs.sample_interval.map(|interval| {
        assert!(
            interval.is_finite() && interval > EPS,
            "sample_interval must be a positive cycle count, got {interval}"
        );
        Sampler {
            interval,
            win_start: 0.0,
            issued: 0.0,
            dram: 0.0,
            stall: StallBuckets::default(),
            timeline: UtilizationTimeline {
                interval,
                samples: Vec::new(),
            },
        }
    });
    let device_issue_cap = spec.sm_count as f64 * issue_cap;
    let device_dram_cap = spec.dram_bytes_per_cycle();

    let place_blocks = |now: f64,
                        pending: &mut std::collections::VecDeque<usize>,
                        sm_resident: &mut Vec<usize>,
                        warp_states: &mut Vec<WarpState>,
                        team_states: &mut Vec<Vec<TeamState>>,
                        block_states: &mut Vec<BlockState>,
                        detail: &mut Option<ScheduleDetail>,
                        phase_start: &mut Vec<Vec<f64>>,
                        placed_count: &mut usize,
                        stalls: &mut Option<StallAttribution>,
                        running_blocks: &mut usize| {
        while let Some(&bi) = pending.front() {
            // Least-loaded SM placement.
            let (sm, load) = sm_resident
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map(|(i, &l)| (i, l))
                .expect("at least one SM");
            if load >= blocks_per_sm {
                break;
            }
            pending.pop_front();
            sm_resident[sm] += 1;
            block_states[bi].placed = true;
            block_states[bi].start_cycle = now;
            if team_states[bi].iter().any(|t| !t.done) {
                *running_blocks += 1;
                if let Some(st) = stalls.as_mut() {
                    // Queue delay before the block won an SM slot.
                    st.blocks[bi].wave_tail = now;
                }
            }
            if let Some(d) = detail.as_mut() {
                let wave = (*placed_count / wave_capacity) as u32;
                if wave as usize == d.wave_starts.len() {
                    d.wave_starts.push(now);
                }
                d.blocks.push(BlockSchedule {
                    block: bi as u32,
                    sm: sm as u32,
                    wave,
                    start_cycle: now,
                    end_cycle: now,
                    stalls: None, // annotated after the event loop
                });
                for ts in phase_start[bi].iter_mut() {
                    *ts = now;
                }
            }
            *placed_count += 1;
            for (ti, team) in team_states[bi].iter_mut().enumerate() {
                if team.done {
                    continue;
                }
                let base = warp_index[bi][ti];
                for wi in 0..blocks[bi].teams[ti].warp_count as usize {
                    let ws = &mut warp_states[base + wi];
                    ws.sm = sm;
                    ws.load_segment(blocks, team.phase_idx, dram_discount, params, alloc_scale);
                }
            }
        }
    };

    place_blocks(
        0.0,
        &mut pending_blocks,
        &mut sm_resident,
        &mut warp_states,
        &mut team_states,
        &mut block_states,
        &mut detail,
        &mut phase_start,
        &mut placed_count,
        &mut stalls,
        &mut running_blocks,
    );

    let mut now = 0.0f64;
    // Blocks whose teams all start "done" (empty traces) never enter the
    // event loop; everything else counts as remaining.
    let mut blocks_remaining = block_states
        .iter()
        .enumerate()
        .filter(|(bi, _)| team_states[*bi].iter().any(|t| !t.done))
        .count();

    let mut issued_integral = 0.0f64;
    let mut dram_integral = 0.0f64;
    let mut timed_out_teams: Vec<(u32, u32)> = Vec::new();

    let mut guard = 0u64;
    let guard_limit = 10_000_000u64;

    while blocks_remaining > 0 {
        guard += 1;
        assert!(guard < guard_limit, "timing simulation failed to converge");

        // ---- Drain zero-work segment completions without advancing time.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for wi in 0..warp_states.len() {
                if warp_states[wi].phase == WarpPhase::Running && warp_states[wi].segment_done() {
                    progressed = true;
                    let (bi, ti) = (warp_states[wi].block, warp_states[wi].team);
                    warp_states[wi].phase = WarpPhase::AtBarrier;
                    let team = &mut team_states[bi][ti];
                    team.warps_pending -= 1;
                    if team.warps_pending == 0 {
                        team.phase_idx += 1;
                        let trace = &blocks[bi].teams[ti];
                        if let Some(d) = detail.as_mut() {
                            let finished = team.phase_idx - 1;
                            let ph = &trace.phases[finished];
                            d.phase_spans.push(PhaseSpan {
                                block: bi as u32,
                                team: ti as u32,
                                phase: finished as u32,
                                label: ph.label.clone(),
                                start_cycle: phase_start[bi][ti],
                                end_cycle: now,
                                rpc_calls: ph.warps.iter().map(|w| w.rpc_calls).sum(),
                            });
                            phase_start[bi][ti] = now;
                        }
                        if team.phase_idx < trace.phases.len() {
                            team.warps_pending = trace.warp_count as usize;
                            let base = warp_index[bi][ti];
                            for w in 0..trace.warp_count as usize {
                                warp_states[base + w].load_segment(
                                    blocks,
                                    team.phase_idx,
                                    dram_discount,
                                    params,
                                    alloc_scale,
                                );
                            }
                        } else {
                            team.done = true;
                            let base = warp_index[bi][ti];
                            for w in 0..trace.warp_count as usize {
                                warp_states[base + w].phase = WarpPhase::Done;
                            }
                            let bs = &mut block_states[bi];
                            bs.teams_pending -= 1;
                            if bs.teams_pending == 0 {
                                bs.end_cycle = now;
                                blocks_remaining -= 1;
                                running_blocks -= 1;
                                if let Some(d) = detail.as_mut() {
                                    if let Some(b) =
                                        d.blocks.iter_mut().find(|b| b.block == bi as u32)
                                    {
                                        b.end_cycle = now;
                                    }
                                }
                                let sm = warp_states[base].sm;
                                sm_resident[sm] -= 1;
                                place_blocks(
                                    now,
                                    &mut pending_blocks,
                                    &mut sm_resident,
                                    &mut warp_states,
                                    &mut team_states,
                                    &mut block_states,
                                    &mut detail,
                                    &mut phase_start,
                                    &mut placed_count,
                                    &mut stalls,
                                    &mut running_blocks,
                                );
                            }
                        }
                    }
                }
            }
        }
        if blocks_remaining == 0 {
            break;
        }

        // ---- Watchdog: kill blocks whose cycle budget has expired. The
        // teardown mirrors normal block completion (free the SM slot,
        // record the end cycle, refill from the queue) so the rest of the
        // schedule proceeds untouched; the functional layer rewrites the
        // affected teams' outcomes to `KernelError::Timeout`.
        if let Some(budget) = inputs.cycle_budget {
            let mut killed = false;
            for bi in 0..block_states.len() {
                if !block_states[bi].placed
                    || !team_states[bi].iter().any(|t| !t.done)
                    || now < block_states[bi].start_cycle + budget - EPS
                {
                    continue;
                }
                killed = true;
                let mut sm = usize::MAX;
                for (ti, team) in team_states[bi].iter_mut().enumerate() {
                    if team.done {
                        continue;
                    }
                    team.done = true;
                    timed_out_teams.push((bi as u32, ti as u32));
                    let base = warp_index[bi][ti];
                    for w in 0..blocks[bi].teams[ti].warp_count as usize {
                        sm = warp_states[base + w].sm;
                        warp_states[base + w].phase = WarpPhase::Done;
                    }
                    block_states[bi].teams_pending -= 1;
                }
                debug_assert_eq!(block_states[bi].teams_pending, 0);
                block_states[bi].end_cycle = now;
                blocks_remaining -= 1;
                running_blocks -= 1;
                if let Some(d) = detail.as_mut() {
                    if let Some(b) = d.blocks.iter_mut().find(|b| b.block == bi as u32) {
                        b.end_cycle = now;
                    }
                }
                sm_resident[sm] -= 1;
                place_blocks(
                    now,
                    &mut pending_blocks,
                    &mut sm_resident,
                    &mut warp_states,
                    &mut team_states,
                    &mut block_states,
                    &mut detail,
                    &mut phase_start,
                    &mut placed_count,
                    &mut stalls,
                    &mut running_blocks,
                );
            }
            if killed {
                // Freshly placed blocks may carry zero-work segments;
                // restart the iteration so the drain sees them first.
                continue;
            }
        }

        // ---- Compute fair-share rates.
        let mut issue_count = vec![0u32; spec.sm_count as usize];
        let mut mem_count = 0u32;
        for ws in &warp_states {
            if ws.phase != WarpPhase::Running {
                continue;
            }
            if ws.insts_left > EPS {
                issue_count[ws.sm] += 1;
            }
            if ws.bytes_left > EPS {
                mem_count += 1;
            }
        }
        let mem_share = if mem_count > 0 {
            dram_capacity / mem_count as f64
        } else {
            0.0
        };

        // ---- Find the next component-completion event.
        let mut dt = f64::INFINITY;
        for ws in &warp_states {
            if ws.phase != WarpPhase::Running {
                continue;
            }
            if ws.insts_left > EPS {
                let ir = (issue_cap / issue_count[ws.sm] as f64).min(1.0);
                dt = dt.min(ws.insts_left / ir);
            }
            if ws.bytes_left > EPS {
                let mr = mem_share.min(mlp_cap * ws.mlp_factor);
                dt = dt.min(ws.bytes_left / mr);
            }
            if ws.latency_left > EPS {
                dt = dt.min(ws.latency_left);
            }
            if ws.alloc_left > EPS {
                dt = dt.min(ws.alloc_left);
            }
        }
        assert!(
            dt.is_finite(),
            "active warps exist but no component can progress"
        );
        // Never step past a watchdog deadline: clamp the interval so the
        // kill pass above fires exactly at `start_cycle + budget`.
        if let Some(budget) = inputs.cycle_budget {
            for (bi, bs) in block_states.iter().enumerate() {
                if bs.placed && team_states[bi].iter().any(|t| !t.done) {
                    let remain = bs.start_cycle + budget - now;
                    if remain > EPS && remain < dt {
                        dt = remain;
                    }
                }
            }
        }

        // ---- Attribute the interval (pure bookkeeping; reads the same
        // rates the event search used, writes only into `stalls`). Each
        // block is charged by the component that bounds *its* earliest
        // completion; the kernel by the globally binding one, except that
        // an under-filled device makes the interval a wave-tail loss.
        let mut iter_class: Option<StallClass> = None;
        if let Some(st) = stalls.as_mut() {
            stall_scratch.clear();
            stall_scratch.resize(blocks.len(), (f64::INFINITY, StallClass::Compute));
            for ws in &warp_states {
                if ws.phase != WarpPhase::Running {
                    continue;
                }
                let slot = &mut stall_scratch[ws.block];
                if ws.insts_left > EPS {
                    let ir = (issue_cap / issue_count[ws.sm] as f64).min(1.0);
                    let t = ws.insts_left / ir;
                    if t < slot.0 {
                        *slot = (t, StallClass::Compute);
                    }
                }
                if ws.bytes_left > EPS {
                    let cap = mlp_cap * ws.mlp_factor;
                    let t = ws.bytes_left / mem_share.min(cap);
                    // Distinguish bandwidth saturation (the fair share is
                    // the cap) from latency-bound memory (the warp's own
                    // MLP window is the cap).
                    let class = if mem_share <= cap {
                        StallClass::DramBw
                    } else {
                        StallClass::Mlp
                    };
                    if t < slot.0 {
                        *slot = (t, class);
                    }
                }
                if ws.latency_left > EPS && ws.latency_left < slot.0 {
                    *slot = (ws.latency_left, StallClass::Rpc);
                }
                if ws.alloc_left > EPS && ws.alloc_left < slot.0 {
                    *slot = (ws.alloc_left, StallClass::Alloc);
                }
            }
            let mut global = (f64::INFINITY, StallClass::Compute);
            for (bi, &(t, class)) in stall_scratch.iter().enumerate() {
                if t.is_finite() {
                    st.blocks[bi].add(class, dt);
                    if t < global.0 {
                        global = (t, class);
                    }
                }
            }
            let kernel_class = if running_blocks < full_blocks {
                StallClass::WaveTail
            } else {
                global.1
            };
            st.kernel.add(kernel_class, dt);
            iter_class = Some(kernel_class);
        }

        // ---- Advance all components by dt.
        let issued_before = issued_integral;
        let dram_before = dram_integral;
        for ws in warp_states.iter_mut() {
            if ws.phase != WarpPhase::Running {
                continue;
            }
            if ws.insts_left > EPS {
                let ir = (issue_cap / issue_count[ws.sm] as f64).min(1.0);
                let spent = (ir * dt).min(ws.insts_left);
                ws.insts_left -= spent;
                issued_integral += spent;
            }
            if ws.bytes_left > EPS {
                let mr = mem_share.min(mlp_cap * ws.mlp_factor);
                let spent = (mr * dt).min(ws.bytes_left);
                ws.bytes_left -= spent;
                dram_integral += spent;
            }
            if ws.latency_left > EPS {
                ws.latency_left -= dt.min(ws.latency_left);
            }
            if ws.alloc_left > EPS {
                ws.alloc_left -= dt.min(ws.alloc_left);
            }
        }

        // ---- Fold the interval into the sampling window. The interval's
        // work is spread uniformly over [now, now + dt) (constant fluid
        // rates), so a boundary crossing splits it by exact time fraction.
        if let Some(s) = sampler.as_mut() {
            let iter_issued = issued_integral - issued_before;
            let iter_dram = dram_integral - dram_before;
            let t_end = now + dt;
            let mut t_cur = now;
            if s.win_start + s.interval <= t_end {
                // Teams never change state mid-interval (completions drain
                // at a fixed `now`), so one count serves every window the
                // interval closes.
                let active_teams = team_states
                    .iter()
                    .enumerate()
                    .filter(|&(bi, _)| block_states[bi].placed)
                    .flat_map(|(_, ts)| ts.iter())
                    .filter(|t| !t.done)
                    .count() as u32;
                while s.win_start + s.interval <= t_end {
                    let boundary = s.win_start + s.interval;
                    let frac = (boundary - t_cur) / dt;
                    s.issued += iter_issued * frac;
                    s.dram += iter_dram * frac;
                    if let Some(class) = iter_class {
                        s.stall.add(class, boundary - t_cur);
                    }
                    s.timeline.samples.push(UtilizationSample {
                        cycle: boundary,
                        active_teams,
                        resident_blocks: running_blocks as u32,
                        occupancy: running_blocks as f64 / wave_capacity as f64,
                        issue_rate: s.issued / (s.interval * device_issue_cap),
                        dram_rate: s.dram / (s.interval * device_dram_cap),
                        stall: s.stall,
                    });
                    s.issued = 0.0;
                    s.dram = 0.0;
                    s.stall = StallBuckets::default();
                    s.win_start = boundary;
                    t_cur = boundary;
                }
            }
            let frac = (t_end - t_cur) / dt;
            s.issued += iter_issued * frac;
            s.dram += iter_dram * frac;
            if let Some(class) = iter_class {
                s.stall.add(class, t_end - t_cur);
            }
        }
        now += dt;
    }

    // Force the exclusive buckets to sum exactly to the totals they
    // partition, then mirror the per-block decomposition onto the
    // timeline when both observers ran.
    if let Some(st) = stalls.as_mut() {
        st.kernel.reconcile(now);
        for (bi, b) in st.blocks.iter_mut().enumerate() {
            b.reconcile(block_states[bi].end_cycle);
        }
        if let Some(d) = detail.as_mut() {
            for b in &mut d.blocks {
                b.stalls = Some(st.blocks[b.block as usize]);
            }
        }
    }

    // Close the final (possibly partial) sampling window at kernel end.
    // Every team is done here, so the instantaneous counts are zero.
    let timeline = sampler.map(|mut s| {
        let win = now - s.win_start;
        if win > EPS {
            s.timeline.samples.push(UtilizationSample {
                cycle: now,
                active_teams: 0,
                resident_blocks: 0,
                occupancy: 0.0,
                issue_rate: s.issued / (win * device_issue_cap),
                dram_rate: s.dram / (win * device_dram_cap),
                stall: s.stall,
            });
        }
        s.timeline
    });

    let cycles = now.max(EPS);
    TimingResult {
        cycles: now,
        block_end_cycles: block_states.iter().map(|b| b.end_cycle).collect(),
        dram_efficiency: dram_eff,
        l2_hit,
        active_region_tags: region_count,
        issue_utilization: issued_integral / (cycles * spec.sm_count as f64 * issue_cap),
        dram_utilization: dram_integral / (cycles * spec.dram_bytes_per_cycle()),
        waves: occ.waves,
        detail,
        stalls,
        timed_out_teams,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MixedSeg, Phase, TeamTrace};

    fn spec() -> GpuSpec {
        GpuSpec::a100_40gb()
    }

    fn params() -> TimingParams {
        TimingParams::default()
    }

    /// A block of `warps` warps, each with one segment of (insts, bytes).
    fn block(warps: u32, insts: f64, bytes: f64) -> BlockTrace {
        let seg = MixedSeg {
            insts,
            moved_bytes: bytes,
            useful_bytes: bytes,
            sectors: (bytes / 32.0) as u64,
            // Tag regions uniquely per call site via bytes hash — tests
            // that care set tags explicitly instead.
            region_tags: vec![],
            region_footprints: vec![],
            rpc_calls: 0,
            alloc_ops: 0.0,
            alloc_fast_ops: 0.0,
            stall_cycles: 0.0,
        };
        BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![Phase {
                    warps: (0..warps).map(|_| seg.clone()).collect(),
                    label: "p".into(),
                }],
                warp_count: warps,
            }],
            shared_mem_bytes: 0,
        }
    }

    fn run(blocks: &[BlockTrace]) -> TimingResult {
        let s = spec();
        let p = params();
        simulate_timing(&TimingInputs {
            spec: &s,
            blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: false,
            collect_stalls: false,
            cycle_budget: None,
            sample_interval: None,
        })
    }

    fn run_detailed(blocks: &[BlockTrace]) -> TimingResult {
        let s = spec();
        let p = params();
        simulate_timing(&TimingInputs {
            spec: &s,
            blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: true,
            collect_stalls: false,
            cycle_budget: None,
            sample_interval: None,
        })
    }

    fn run_stalls(blocks: &[BlockTrace]) -> TimingResult {
        let s = spec();
        let p = params();
        simulate_timing(&TimingInputs {
            spec: &s,
            blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: true,
            collect_stalls: true,
            cycle_budget: None,
            sample_interval: None,
        })
    }

    fn run_sampled(blocks: &[BlockTrace], interval: f64, collect_stalls: bool) -> TimingResult {
        let s = spec();
        let p = params();
        simulate_timing(&TimingInputs {
            spec: &s,
            blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: false,
            collect_stalls,
            cycle_budget: None,
            sample_interval: Some(interval),
        })
    }

    #[test]
    fn single_warp_pure_compute() {
        let r = run(&[block(1, 1000.0, 0.0)]);
        assert!((r.cycles - 1000.0).abs() < 1.0, "cycles = {}", r.cycles);
    }

    #[test]
    fn four_warps_one_sm_still_full_rate() {
        // 4 schedulers: 4 warps issue at 1 IPC each.
        let r = run(&[block(4, 1000.0, 0.0)]);
        assert!((r.cycles - 1000.0).abs() < 1.0, "cycles = {}", r.cycles);
    }

    #[test]
    fn eight_warps_one_sm_halve_rate() {
        let r = run(&[block(8, 1000.0, 0.0)]);
        assert!((r.cycles - 2000.0).abs() < 1.0, "cycles = {}", r.cycles);
    }

    #[test]
    fn compute_blocks_on_different_sms_scale_linearly() {
        let one = run(&[block(8, 1000.0, 0.0)]);
        let many: Vec<BlockTrace> = (0..64).map(|_| block(8, 1000.0, 0.0)).collect();
        let r = run(&many);
        // 64 blocks spread over 108 SMs: same duration as one block.
        assert!((r.cycles - one.cycles).abs() < 1.0);
    }

    #[test]
    fn single_warp_memory_is_mlp_bound() {
        let s = spec();
        let bytes = 1_000_000.0;
        let r = run(&[block(1, 1.0, bytes)]);
        // One region: the MLP cap runs at the single-region DRAM efficiency.
        let expected =
            bytes / (s.mem_model.warp_mlp_bytes_per_cycle() * s.mem_model.dram_efficiency(1));
        // L2 may discount some traffic; footprints are empty so l2_hit = 0.
        assert!(
            (r.cycles - expected).abs() / expected < 0.01,
            "cycles = {}",
            r.cycles
        );
    }

    #[test]
    fn many_memory_warps_saturate_dram() {
        // 64 blocks × 32 warps, each moving 100 KB: total 204.8 MB.
        let s = spec();
        let blocks: Vec<BlockTrace> = (0..64).map(|_| block(32, 1.0, 100_000.0)).collect();
        let r = run(&blocks);
        let total_bytes = 64.0 * 32.0 * 100_000.0;
        let expected = total_bytes / (s.dram_bytes_per_cycle() * r.dram_efficiency);
        assert!(
            (r.cycles - expected).abs() / expected < 0.05,
            "cycles = {} vs {}",
            r.cycles,
            expected
        );
        assert!(r.dram_utilization > 0.5);
    }

    #[test]
    fn phases_synchronize_within_team() {
        // Warp 0 has a long phase-0 segment; warp 1 a short one. In phase 1
        // both have short segments. Total = long + short, not max alone.
        let seg = |insts: f64| MixedSeg {
            insts,
            ..Default::default()
        };
        let b = BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![
                    Phase {
                        warps: vec![seg(1000.0), seg(10.0)],
                        label: "p0".into(),
                    },
                    Phase {
                        warps: vec![seg(10.0), seg(10.0)],
                        label: "p1".into(),
                    },
                ],
                warp_count: 2,
            }],
            shared_mem_bytes: 0,
        };
        let r = run(&[b]);
        assert!((r.cycles - 1010.0).abs() < 1.0, "cycles = {}", r.cycles);
    }

    #[test]
    fn excess_blocks_queue_in_waves() {
        // 1024-thread blocks: 2 per SM, 216 resident. 432 blocks = 2 waves.
        let blocks: Vec<BlockTrace> = (0..432).map(|_| block(32, 1000.0, 0.0)).collect();
        let r = run(&blocks);
        assert_eq!(r.waves, 2);
        // 2 resident blocks per SM = 64 warps sharing 4 issue slots:
        // each warp runs at 1/16 IPC, so 16000 cycles per wave, 2 waves.
        assert!((r.cycles - 32000.0).abs() < 10.0, "cycles = {}", r.cycles);
    }

    #[test]
    fn rpc_latency_floors_duration() {
        let mut b = block(1, 10.0, 0.0);
        b.teams[0].phases[0].warps[0].rpc_calls = 5;
        let r = run(&[b]);
        let p = params();
        assert!(r.cycles >= 5.0 * p.rpc_cycles_per_call - 1.0);
    }

    #[test]
    fn interference_slows_many_regions() {
        let mk = |tag: u32| {
            let mut b = block(32, 1.0, 500_000.0);
            b.teams[0].phases[0].warps[0].region_tags = vec![tag];
            b
        };
        let few: Vec<BlockTrace> = (0..64).map(|_| mk(0)).collect();
        let many: Vec<BlockTrace> = (0..64).map(mk).collect();
        let r_few = run(&few);
        let r_many = run(&many);
        assert!(r_many.dram_efficiency < r_few.dram_efficiency);
        assert!(r_many.cycles > r_few.cycles);
    }

    #[test]
    fn l2_resident_footprint_discounts_traffic() {
        let mk = |fp: Option<(u64, u64)>| {
            let mut b = block(32, 1.0, 500_000.0);
            if let Some(f) = fp {
                b.teams[0].phases[0].warps[0].region_footprints = vec![f];
            }
            b
        };
        // Small footprint (1 MB) fits L2; huge footprint (10 GB) does not.
        let fits: Vec<BlockTrace> = (0..64).map(|_| mk(Some((0x1000, 1 << 20)))).collect();
        let thrash: Vec<BlockTrace> = (0..64).map(|_| mk(Some((0x1000, 10 << 30)))).collect();
        let r_fits = run(&fits);
        let r_thrash = run(&thrash);
        assert!(r_fits.l2_hit > 0.8);
        assert!(r_thrash.l2_hit < 0.01);
        assert!(r_fits.cycles < r_thrash.cycles);
    }

    #[test]
    fn footprint_multiplier_defeats_l2() {
        let mk = || {
            let mut b = block(32, 1.0, 500_000.0);
            b.teams[0].phases[0].warps[0].region_footprints = vec![(0x1000, 1 << 20)];
            b
        };
        let blocks: Vec<BlockTrace> = (0..8).map(|_| mk()).collect();
        let s = spec();
        let p = params();
        let scaled = simulate_timing(&TimingInputs {
            spec: &s,
            blocks: &blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: false,
            collect_stalls: false,
            cycle_budget: None,
            sample_interval: None,
        });
        let paper = simulate_timing(&TimingInputs {
            spec: &s,
            blocks: &blocks,
            params: &p,
            footprint_multiplier: 100_000.0,
            collect_detail: false,
            collect_stalls: false,
            cycle_budget: None,
            sample_interval: None,
        });
        assert!(paper.l2_hit < scaled.l2_hit);
        assert!(paper.cycles > scaled.cycles);
    }

    #[test]
    fn empty_phase_blocks_complete_instantly() {
        let b = BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![Phase {
                    warps: vec![MixedSeg::default()],
                    label: "noop".into(),
                }],
                warp_count: 1,
            }],
            shared_mem_bytes: 0,
        };
        let r = run(&[b]);
        assert!(r.cycles < 1.0);
    }

    #[test]
    fn utilization_bounded() {
        let blocks: Vec<BlockTrace> = (0..16).map(|_| block(8, 5000.0, 200_000.0)).collect();
        let r = run(&blocks);
        assert!(r.issue_utilization > 0.0 && r.issue_utilization <= 1.0 + 1e-9);
        assert!(r.dram_utilization > 0.0 && r.dram_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn detail_absent_by_default_and_result_unchanged() {
        let blocks: Vec<BlockTrace> = (0..8).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let plain = run(&blocks);
        let detailed = run_detailed(&blocks);
        assert!(plain.detail.is_none());
        assert!(detailed.detail.is_some());
        // Observation must not perturb the simulation.
        assert_eq!(plain.cycles, detailed.cycles);
        assert_eq!(plain.block_end_cycles, detailed.block_end_cycles);
    }

    #[test]
    fn detail_wave_boundaries_match_waves() {
        // Same scenario as excess_blocks_queue_in_waves: 432 blocks, 2 waves.
        let blocks: Vec<BlockTrace> = (0..432).map(|_| block(32, 1000.0, 0.0)).collect();
        let r = run_detailed(&blocks);
        let d = r.detail.as_ref().unwrap();
        assert_eq!(d.waves(), r.waves);
        assert_eq!(d.blocks.len(), 432);
        assert_eq!(d.wave_starts[0], 0.0);
        // Wave 1 starts strictly after wave 0 and at a first-wave block end.
        assert!(d.wave_starts[1] > 0.0);
        // Every block recorded exactly once, with a sane span and SM id.
        let mut seen = vec![false; 432];
        for b in &d.blocks {
            assert!(!seen[b.block as usize]);
            seen[b.block as usize] = true;
            assert!(b.end_cycle >= b.start_cycle);
            assert!((b.sm as usize) < spec().sm_count as usize);
            assert!(b.wave < r.waves);
        }
        assert!(seen.iter().all(|&s| s));
        // Second-wave blocks start when wave 1 opens.
        assert!(d
            .blocks
            .iter()
            .any(|b| b.wave == 1 && b.start_cycle >= d.wave_starts[1]));
    }

    fn sched_block(block: u32, sm: u32, wave: u32, start: f64, end: f64) -> BlockSchedule {
        BlockSchedule {
            block,
            sm,
            wave,
            start_cycle: start,
            end_cycle: end,
            stalls: None,
        }
    }

    #[test]
    fn critical_block_picks_last_finisher_with_stable_ties() {
        let d = ScheduleDetail {
            blocks: vec![
                sched_block(0, 0, 0, 0.0, 100.0),
                sched_block(1, 1, 0, 0.0, 250.0),
                sched_block(2, 0, 1, 100.0, 250.0),
            ],
            phase_spans: Vec::new(),
            wave_starts: vec![0.0, 100.0],
        };
        // Ties on end_cycle break toward the lowest block id.
        assert_eq!(d.critical_block().unwrap().block, 1);
        assert!(ScheduleDetail::default().critical_block().is_none());
    }

    #[test]
    fn critical_chain_walks_sm_slot_dependencies() {
        // SM 0 runs blocks 0 -> 2 -> 3 back to back; block 3 finishes last.
        // SM 1 runs block 1, done early. The chain is the SM 0 lineage.
        let d = ScheduleDetail {
            blocks: vec![
                sched_block(0, 0, 0, 0.0, 100.0),
                sched_block(1, 1, 0, 0.0, 50.0),
                sched_block(2, 0, 1, 100.0, 220.0),
                sched_block(3, 0, 1, 230.0, 400.0),
            ],
            phase_spans: Vec::new(),
            wave_starts: vec![0.0, 100.0],
        };
        let chain: Vec<u32> = d.critical_chain().iter().map(|b| b.block).collect();
        assert_eq!(chain, vec![0, 2, 3]);
        // Residence plus scheduling gaps telescopes to the kernel cycles.
        let mut covered = 0.0;
        let mut prev_end = 0.0;
        for b in d.critical_chain() {
            covered += (b.start_cycle - prev_end) + (b.end_cycle - b.start_cycle);
            prev_end = b.end_cycle;
        }
        assert_eq!(covered, 400.0);
    }

    #[test]
    fn critical_chain_tiles_a_real_multiwave_kernel() {
        let blocks: Vec<BlockTrace> = (0..432).map(|_| block(32, 1000.0, 0.0)).collect();
        let r = run_detailed(&blocks);
        let d = r.detail.as_ref().unwrap();
        let chain = d.critical_chain();
        assert!(!chain.is_empty());
        assert_eq!(chain.last().unwrap().end_cycle, r.cycles);
        // Hops are start-ordered and slot-consistent: each hop begins at
        // or after its predecessor's completion on the same SM.
        for hop in chain.windows(2) {
            assert!(hop[0].end_cycle <= hop[1].start_cycle + 1e-9);
            assert_eq!(hop[0].sm, hop[1].sm);
        }
        let mut covered = 0.0;
        let mut prev_end = 0.0;
        for b in &chain {
            covered += (b.start_cycle - prev_end) + (b.end_cycle - b.start_cycle);
            prev_end = b.end_cycle;
        }
        assert!((covered - r.cycles).abs() <= 1e-6 * r.cycles.max(1.0));
    }

    #[test]
    fn wave_spans_summarize_starts_ends_and_block_counts() {
        let blocks: Vec<BlockTrace> = (0..432).map(|_| block(32, 1000.0, 0.0)).collect();
        let r = run_detailed(&blocks);
        let d = r.detail.as_ref().unwrap();
        let spans = d.wave_spans();
        assert_eq!(spans.len() as u32, r.waves);
        assert_eq!(spans.iter().map(|&(_, _, n)| n).sum::<u32>(), 432);
        for (i, &(start, end, n)) in spans.iter().enumerate() {
            assert_eq!(start, d.wave_starts[i]);
            assert!(end >= start);
            assert!(n > 0);
        }
        // The last wave's end is the kernel's end.
        let max_end = spans.iter().fold(0.0f64, |m, &(_, e, _)| m.max(e));
        assert_eq!(max_end, r.cycles);
    }

    #[test]
    fn stalls_absent_by_default_and_result_unchanged() {
        let blocks: Vec<BlockTrace> = (0..8).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let plain = run(&blocks);
        let attributed = run_stalls(&blocks);
        assert!(plain.stalls.is_none());
        assert!(attributed.stalls.is_some());
        // Attribution must not perturb the simulation.
        assert_eq!(plain.cycles, attributed.cycles);
        assert_eq!(plain.block_end_cycles, attributed.block_end_cycles);
    }

    #[test]
    fn stall_buckets_sum_exactly_to_totals() {
        // A deliberately mixed ensemble: compute-heavy, memory-heavy and
        // RPC-heavy blocks plus one empty block, across two waves.
        let mut blocks: Vec<BlockTrace> = Vec::new();
        for i in 0..230 {
            blocks.push(match i % 3 {
                0 => block(32, 20_000.0, 100.0),
                1 => block(32, 10.0, 200_000.0),
                _ => {
                    let mut b = block(4, 500.0, 1_000.0);
                    b.teams[0].phases[0].warps[0].rpc_calls = 1;
                    b
                }
            });
        }
        blocks.push(BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![],
                warp_count: 1,
            }],
            shared_mem_bytes: 0,
        });
        let r = run_stalls(&blocks);
        let st = r.stalls.as_ref().unwrap();
        assert_eq!(st.kernel.total(), r.cycles, "kernel buckets must be exact");
        assert_eq!(st.blocks.len(), blocks.len());
        for (bi, b) in st.blocks.iter().enumerate() {
            assert_eq!(
                b.total(),
                r.block_end_cycles[bi],
                "block {bi} buckets must sum to its end cycle"
            );
        }
        // The mix must actually exercise several buckets.
        assert!(st.kernel.compute > 0.0 || st.kernel.wave_tail > 0.0);
        assert!(st.kernel.dram_bw > 0.0 || st.kernel.mlp > 0.0);
    }

    #[test]
    fn pure_compute_attributes_to_compute() {
        let r = run_stalls(&[block(8, 10_000.0, 0.0)]);
        let k = r.stalls.unwrap().kernel;
        assert_eq!(k.total(), r.cycles);
        assert_eq!(k.compute, r.cycles);
        assert_eq!(k.dominant(), "compute");
    }

    #[test]
    fn saturated_dram_attributes_to_dram_bw() {
        // Same scenario as many_memory_warps_saturate_dram: 2048 memory
        // warps make each fair share far below the per-warp MLP cap.
        let blocks: Vec<BlockTrace> = (0..64).map(|_| block(32, 1.0, 100_000.0)).collect();
        let r = run_stalls(&blocks);
        let k = r.stalls.unwrap().kernel;
        assert_eq!(k.dominant(), "dram_bw");
        assert!(k.dram_bw > 0.9 * r.cycles, "dram_bw = {}", k.dram_bw);
    }

    #[test]
    fn lone_memory_warp_attributes_to_mlp() {
        // One warp cannot saturate DRAM: its own MLP window is the cap.
        let r = run_stalls(&[block(1, 1.0, 1_000_000.0)]);
        let k = r.stalls.unwrap().kernel;
        assert_eq!(k.dominant(), "mlp");
        assert!(k.mlp > 0.99 * r.cycles, "mlp = {}", k.mlp);
    }

    #[test]
    fn rpc_latency_attributes_to_rpc() {
        let mut b = block(1, 10.0, 0.0);
        b.teams[0].phases[0].warps[0].rpc_calls = 5;
        let r = run_stalls(&[b]);
        let k = r.stalls.unwrap().kernel;
        assert_eq!(k.dominant(), "rpc");
        assert!(k.rpc > 0.99 * r.cycles);
    }

    #[test]
    fn straggler_block_charges_kernel_wave_tail() {
        // Two blocks on different SMs, one 10× longer: once the short one
        // finishes the device is under-filled, so the kernel charges the
        // remainder to wave_tail — while the straggler block itself is
        // honestly compute-bound the whole time.
        let r = run_stalls(&[block(8, 1_000.0, 0.0), block(8, 10_000.0, 0.0)]);
        let st = r.stalls.as_ref().unwrap();
        let short_end = r.block_end_cycles[0];
        assert!((st.kernel.wave_tail - (r.cycles - short_end)).abs() < 1.0);
        assert!((st.kernel.compute - short_end).abs() < 1.0);
        assert_eq!(st.blocks[1].compute, r.block_end_cycles[1]);
        assert_eq!(st.blocks[1].wave_tail, 0.0);
    }

    #[test]
    fn queued_blocks_charge_their_queue_delay_to_wave_tail() {
        // 432 identical blocks, 2 full waves: the kernel never runs
        // under-filled (wave 2 refills instantly), but every second-wave
        // block spent the first wave queued.
        let blocks: Vec<BlockTrace> = (0..432).map(|_| block(32, 1000.0, 0.0)).collect();
        let r = run_stalls(&blocks);
        let st = r.stalls.as_ref().unwrap();
        assert_eq!(st.kernel.wave_tail, 0.0);
        assert_eq!(st.kernel.total(), r.cycles);
        let d = r.detail.as_ref().unwrap();
        let mut queued = 0;
        for b in &d.blocks {
            let s = b.stalls.expect("both observers ran");
            assert_eq!(s.total(), b.end_cycle);
            if b.wave == 1 {
                queued += 1;
                assert!((s.wave_tail - b.start_cycle).abs() < 1e-9);
                assert!(s.wave_tail > 0.0);
            } else {
                assert_eq!(s.wave_tail, 0.0);
            }
        }
        assert_eq!(queued, 216);
    }

    #[test]
    fn stall_round_trip_through_json() {
        let blocks: Vec<BlockTrace> = (0..4).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let st = run_stalls(&blocks).stalls.unwrap();
        let json = serde_json::to_string(&st).unwrap();
        let back: StallAttribution = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back);
    }

    #[test]
    fn detail_phase_spans_tile_the_block() {
        let seg = |insts: f64| MixedSeg {
            insts,
            ..Default::default()
        };
        let b = BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![
                    Phase {
                        warps: vec![seg(1000.0), seg(10.0)],
                        label: "p0".into(),
                    },
                    Phase {
                        warps: vec![seg(10.0), seg(10.0)],
                        label: "p1".into(),
                    },
                ],
                warp_count: 2,
            }],
            shared_mem_bytes: 0,
        };
        let r = run_detailed(&[b]);
        let d = r.detail.as_ref().unwrap();
        assert_eq!(d.phase_spans.len(), 2);
        let p0 = &d.phase_spans[0];
        let p1 = &d.phase_spans[1];
        assert_eq!((p0.label.as_str(), p1.label.as_str()), ("p0", "p1"));
        assert_eq!(p0.start_cycle, 0.0);
        // Phases abut at the barrier and the last one ends with the block.
        assert_eq!(p0.end_cycle, p1.start_cycle);
        assert_eq!(p1.end_cycle, d.blocks[0].end_cycle);
        assert!(p0.end_cycle > p0.start_cycle);
    }

    #[test]
    fn timeline_absent_by_default_and_result_unchanged() {
        let blocks: Vec<BlockTrace> = (0..8).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let plain = run(&blocks);
        let sampled = run_sampled(&blocks, 500.0, false);
        assert!(plain.timeline.is_none());
        let tl = sampled.timeline.as_ref().unwrap();
        assert!(!tl.samples.is_empty());
        // Sampling must not perturb the simulation.
        assert_eq!(plain.cycles, sampled.cycles);
        assert_eq!(plain.block_end_cycles, sampled.block_end_cycles);
        assert_eq!(plain.issue_utilization, sampled.issue_utilization);
        assert_eq!(plain.dram_utilization, sampled.dram_utilization);
    }

    #[test]
    fn timeline_samples_are_monotonic_and_bounded() {
        let blocks: Vec<BlockTrace> = (0..16).map(|_| block(8, 5000.0, 200_000.0)).collect();
        let r = run_sampled(&blocks, 300.0, false);
        let tl = r.timeline.unwrap();
        assert_eq!(tl.interval, 300.0);
        let mut prev = 0.0;
        for s in &tl.samples {
            assert!(s.cycle > prev, "samples must be strictly increasing");
            prev = s.cycle;
            assert!(s.issue_rate >= 0.0 && s.issue_rate <= 1.0 + 1e-9);
            assert!(s.dram_rate >= 0.0 && s.dram_rate <= 1.0 + 1e-9);
            assert!(s.occupancy >= 0.0 && s.occupancy <= 1.0 + 1e-9);
            // Stalls were not collected: buckets stay zero.
            assert_eq!(s.stall.total(), 0.0);
        }
        // The last window closes exactly at kernel end.
        assert_eq!(tl.samples.last().unwrap().cycle, r.cycles);
    }

    #[test]
    fn timeline_rates_integrate_to_utilization() {
        // The windowed rates are a partition of the same work integrals the
        // aggregate utilizations divide, so the window-weighted mean of the
        // samples must reproduce them (up to fp accumulation).
        let blocks: Vec<BlockTrace> = (0..16).map(|_| block(8, 5000.0, 200_000.0)).collect();
        let r = run_sampled(&blocks, 250.0, false);
        let tl = r.timeline.as_ref().unwrap();
        let mut issue_integral = 0.0;
        let mut dram_integral = 0.0;
        let mut prev = 0.0;
        for s in &tl.samples {
            let win = s.cycle - prev;
            issue_integral += s.issue_rate * win;
            dram_integral += s.dram_rate * win;
            prev = s.cycle;
        }
        let issue_mean = issue_integral / r.cycles;
        let dram_mean = dram_integral / r.cycles;
        assert!(
            (issue_mean - r.issue_utilization).abs() < 1e-6,
            "issue {issue_mean} vs {}",
            r.issue_utilization
        );
        assert!(
            (dram_mean - r.dram_utilization).abs() < 1e-6,
            "dram {dram_mean} vs {}",
            r.dram_utilization
        );
    }

    #[test]
    fn timeline_stall_windows_tile_the_run() {
        // With stall collection on, each sample's buckets sum to its
        // window length and the whole series tiles [0, cycles).
        let blocks: Vec<BlockTrace> = (0..8).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let r = run_sampled(&blocks, 400.0, true);
        let tl = r.timeline.as_ref().unwrap();
        let mut prev = 0.0;
        for s in &tl.samples {
            let win = s.cycle - prev;
            assert!(
                (s.stall.total() - win).abs() < 1e-6 * win.max(1.0),
                "window stalls {} vs window {win}",
                s.stall.total()
            );
            prev = s.cycle;
        }
        assert_eq!(tl.samples.last().unwrap().cycle, r.cycles);
    }

    #[test]
    fn timeline_captures_wave_tail_drop() {
        // Straggler scenario: after the short block finishes, occupancy
        // drops and later samples must see fewer active teams.
        let r = run_sampled(
            &[block(8, 1_000.0, 0.0), block(8, 10_000.0, 0.0)],
            500.0,
            false,
        );
        let tl = r.timeline.unwrap();
        let first = tl.samples.first().unwrap();
        let last = tl.samples.last().unwrap();
        assert!(first.active_teams >= 2);
        assert!(last.active_teams < first.active_teams);
        assert!(last.occupancy <= first.occupancy);
    }

    #[test]
    fn timeline_round_trip_through_json() {
        let blocks: Vec<BlockTrace> = (0..4).map(|_| block(8, 1000.0, 50_000.0)).collect();
        let tl = run_sampled(&blocks, 200.0, true).timeline.unwrap();
        let json = serde_json::to_string(&tl).unwrap();
        let back: UtilizationTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(tl, back);
    }

    /// A block whose only segment issues allocator operations.
    fn alloc_block(ops: f64, fast: f64, tags: Vec<u32>) -> BlockTrace {
        let seg = MixedSeg {
            insts: 100.0,
            region_tags: tags,
            alloc_ops: ops,
            alloc_fast_ops: fast,
            ..Default::default()
        };
        BlockTrace {
            teams: vec![TeamTrace {
                phases: vec![Phase {
                    warps: vec![seg],
                    label: "alloc".into(),
                }],
                warp_count: 1,
            }],
            shared_mem_bytes: 0,
        }
    }

    fn run_alloc(blocks: &[BlockTrace], per_op: f64, contention: f64) -> TimingResult {
        let s = spec();
        let p = TimingParams {
            alloc_cycles_per_op: per_op,
            alloc_contention: contention,
            ..TimingParams::default()
        };
        simulate_timing(&TimingInputs {
            spec: &s,
            blocks,
            params: &p,
            footprint_multiplier: 1.0,
            collect_detail: false,
            collect_stalls: true,
            cycle_budget: None,
            sample_interval: None,
        })
    }

    #[test]
    fn alloc_latency_is_off_by_default() {
        // With the default params the allocator channel contributes no
        // cycles and no bucket, even for a trace full of allocator ops —
        // the bit-identity escape hatch.
        let blocks = vec![alloc_block(50.0, 10.0, vec![0])];
        let with_ops = run_stalls(&blocks);
        let without_ops = run_stalls(&[alloc_block(0.0, 0.0, vec![0])]);
        assert_eq!(with_ops.cycles, without_ops.cycles);
        assert_eq!(with_ops.stalls.unwrap().kernel.alloc, 0.0);
    }

    #[test]
    fn alloc_latency_binds_and_lands_in_the_alloc_bucket() {
        let blocks = vec![alloc_block(50.0, 0.0, vec![0])];
        let base = run_alloc(&blocks, 0.0, 0.0);
        let priced = run_alloc(&blocks, 1_000.0, 0.0);
        // 50 global-path ops × 1000 cycles dwarf the 100-inst segment.
        assert!(priced.cycles > base.cycles);
        assert!((priced.cycles - 50_000.0).abs() < 1.0, "{}", priced.cycles);
        let st = priced.stalls.unwrap();
        assert!(st.kernel.alloc > 0.9 * priced.cycles);
        assert_eq!(st.kernel.total(), priced.cycles);
    }

    #[test]
    fn free_list_hits_cost_a_quarter() {
        let slow = run_alloc(&[alloc_block(40.0, 0.0, vec![0])], 1_000.0, 0.0);
        let fast = run_alloc(&[alloc_block(40.0, 40.0, vec![0])], 1_000.0, 0.0);
        assert!(
            (slow.cycles / fast.cycles - 4.0).abs() < 0.1,
            "slow {} vs fast {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn alloc_contention_scales_with_resident_heaps() {
        // One heap: no contention surcharge. Four heaps: 1 + 0.5×3 = 2.5×.
        let one = run_alloc(&[alloc_block(40.0, 0.0, vec![0])], 1_000.0, 0.5);
        let four: Vec<BlockTrace> = (0..4).map(|t| alloc_block(40.0, 0.0, vec![t])).collect();
        let contended = run_alloc(&four, 1_000.0, 0.5);
        // Blocks run concurrently, so kernel cycles track the per-block
        // allocator latency, which the contention factor scales.
        assert!(
            (contended.cycles / one.cycles - 2.5).abs() < 0.1,
            "contended {} vs lone {}",
            contended.cycles,
            one.cycles
        );
    }
}
