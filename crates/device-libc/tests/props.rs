//! Property-based tests for the partial device libc.

use device_libc::rand::{Lcg64, XorShift64};
use device_libc::sort::{dl_bsearch, dl_qsort};
use device_libc::string::{dl_memcpy, dl_strlen, parse_c_int, read_cstr, write_cstr};
use device_libc::{format_c, PrintfArg};
use gpu_mem::DeviceMemory;
use gpu_sim::{KernelError, TeamCtx};
use proptest::prelude::*;

fn with_lane<R>(f: impl FnOnce(&mut gpu_sim::LaneCtx<'_, '_>) -> Result<R, KernelError>) -> R {
    let mut mem = DeviceMemory::new(1 << 23);
    let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 0, 48 << 10);
    ctx.serial("prop", f).unwrap()
}

proptest! {
    /// Device qsort agrees with std's sort on arbitrary inputs.
    #[test]
    fn qsort_matches_std(mut data in prop::collection::vec(-1e12f64..1e12, 0..300)) {
        let sorted = with_lane(|lane| {
            let buf = lane.dev_alloc((data.len() as u64 * 8).max(8))?;
            for (i, v) in data.iter().enumerate() {
                lane.st_idx::<f64>(buf, i as u64, *v)?;
            }
            dl_qsort::<f64>(lane, buf, data.len() as u64)?;
            (0..data.len() as u64).map(|i| lane.ld_idx::<f64>(buf, i)).collect::<Result<Vec<_>, _>>()
        });
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(sorted, data);
    }

    /// bsearch on a sorted array finds exactly the present elements and
    /// valid insertion points for absent ones.
    #[test]
    fn bsearch_agrees_with_binary_search(mut data in prop::collection::vec(0u32..10_000, 1..200), key in 0u32..10_000) {
        data.sort_unstable();
        data.dedup();
        let expected = data.binary_search(&key);
        let got = with_lane(|lane| {
            let buf = lane.dev_alloc(data.len() as u64 * 4)?;
            for (i, v) in data.iter().enumerate() {
                lane.st_idx::<u32>(buf, i as u64, *v)?;
            }
            dl_bsearch::<u32>(lane, buf, data.len() as u64, key)
        });
        match (expected, got) {
            (Ok(e), Ok(g)) => prop_assert_eq!(e as u64, g),
            (Err(e), Err(g)) => prop_assert_eq!(e as u64, g),
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    /// memcpy copies exactly and only the requested range.
    #[test]
    fn memcpy_exact(src in prop::collection::vec(any::<u8>(), 1..300), n in 0usize..300) {
        let n = n.min(src.len());
        let (copied, sentinel) = with_lane(|lane| {
            let s = lane.dev_alloc(src.len() as u64)?;
            let d = lane.dev_alloc(src.len() as u64 + 8)?;
            for (i, b) in src.iter().enumerate() {
                lane.st::<u8>(s.byte_add(i as u64), *b)?;
            }
            for i in 0..src.len() as u64 + 8 {
                lane.st::<u8>(d.byte_add(i), 0xAB)?;
            }
            dl_memcpy(lane, d, s, n as u64)?;
            let mut out = Vec::new();
            for i in 0..n as u64 {
                out.push(lane.ld::<u8>(d.byte_add(i))?);
            }
            let sentinel = lane.ld::<u8>(d.byte_add(n as u64))?;
            Ok((out, sentinel))
        });
        prop_assert_eq!(&copied[..], &src[..n]);
        prop_assert_eq!(sentinel, 0xAB);
    }

    /// C strings round-trip through device memory.
    #[test]
    fn cstr_roundtrip(s in "[ -~&&[^\0]]{0,100}") {
        let out = with_lane(|lane| {
            let buf = lane.dev_alloc(s.len() as u64 + 1)?;
            write_cstr(lane, buf, &s)?;
            let n = dl_strlen(lane, buf)?;
            let text = read_cstr(lane, buf)?;
            Ok((n, text))
        });
        prop_assert_eq!(out.0, s.len() as u64);
        prop_assert_eq!(out.1, s);
    }

    /// `parse_c_int` matches Rust parsing on plain integers.
    #[test]
    fn atoi_matches_rust(v in -1_000_000_000i64..1_000_000_000) {
        prop_assert_eq!(parse_c_int(&v.to_string()), v);
    }

    /// printf never panics on arbitrary format strings and argument lists.
    #[test]
    fn printf_never_panics(fmt in ".{0,80}", ints in prop::collection::vec(any::<i64>(), 0..4), floats in prop::collection::vec(any::<f64>(), 0..4)) {
        let mut args: Vec<PrintfArg> = ints.into_iter().map(PrintfArg::Int).collect();
        args.extend(floats.into_iter().map(PrintfArg::Float));
        let _ = format_c(&fmt, &args);
    }

    /// `%d` formatting matches Rust's.
    #[test]
    fn printf_d_matches(v in any::<i64>()) {
        prop_assert_eq!(format_c("%d", &[PrintfArg::Int(v)]), v.to_string());
    }

    /// The LCG skip law: skip(a+b) == skip(a) then skip(b).
    #[test]
    fn lcg_skip_is_additive(seed in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
        let mut x = Lcg64::new(seed);
        x.skip(a + b);
        let mut y = Lcg64::new(seed);
        y.skip(a);
        y.skip(b);
        prop_assert_eq!(x, y);
    }

    /// PRNG outputs stay in [0, 1).
    #[test]
    fn prng_unit_interval(seed in any::<u64>()) {
        let mut l = Lcg64::new(seed);
        let mut x = XorShift64::new(seed);
        for _ in 0..100 {
            let a = l.next_f64();
            let b = x.next_f64();
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
        }
    }
}
