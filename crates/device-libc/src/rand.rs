//! Deterministic PRNGs matching what the ported benchmarks use.
//!
//! XSBench and RSBench seed a 64-bit LCG per lookup so that results are
//! reproducible across schedules — crucial for ensemble execution where
//! instance-to-team mapping must not change answers.

/// The 64-bit LCG used by XSBench/RSBench (POSIX `rand48`-family
/// multiplier, as in the reference implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    const MULT: u64 = 2806196910506780709;
    const ADD: u64 = 1;

    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(Self::MULT).wrapping_add(Self::ADD),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(Self::MULT).wrapping_add(Self::ADD);
        self.state
    }

    /// Uniform double in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub fn next_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Jump ahead `n` steps in O(log n) — the trick XSBench uses to give
    /// every lookup an independent, reproducible stream.
    pub fn skip(&mut self, mut n: u64) {
        let mut cur_mult = Self::MULT;
        let mut cur_add = Self::ADD;
        let mut acc_mult = 1u64;
        let mut acc_add = 0u64;
        while n > 0 {
            if n & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_add = acc_add.wrapping_mul(cur_mult).wrapping_add(cur_add);
            }
            cur_add = cur_mult.wrapping_mul(cur_add).wrapping_add(cur_add);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            n >>= 1;
        }
        self.state = acc_mult.wrapping_mul(self.state).wrapping_add(acc_add);
    }
}

/// Marsaglia xorshift64*, used where the benchmarks want a cheaper stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.max(1), // xorshift must not start at 0
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_deterministic() {
        let mut a = Lcg64::new(42);
        let mut b = Lcg64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn lcg_skip_matches_stepping() {
        for n in [0u64, 1, 2, 7, 63, 1000, 123_456] {
            let mut stepped = Lcg64::new(7);
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut skipped = Lcg64::new(7);
            skipped.skip(n);
            assert_eq!(stepped, skipped, "n = {n}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Lcg64::new(1);
        let mut x = XorShift64::new(1);
        for _ in 0..1000 {
            let a = r.next_f64();
            let b = x.next_f64();
            assert!((0.0..1.0).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = Lcg64::new(9);
        for _ in 0..1000 {
            assert!(r.next_range(17) < 17);
        }
        assert_eq!(r.next_range(0), 0);
    }

    #[test]
    fn f64_covers_the_interval() {
        // Crude uniformity check: both halves get hits.
        let mut r = Lcg64::new(5);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if r.next_f64() < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo={lo} hi={hi}");
    }

    #[test]
    fn xorshift_zero_seed_is_fixed_up() {
        let mut x = XorShift64::new(0);
        assert_ne!(x.next_u64(), 0);
    }
}
