//! `mem*` and `str*` over simulated device memory.
//!
//! Bulk operations copy in 8-byte chunks where alignment allows, charging
//! the simulator the same traffic a vectorized device libc would.

use gpu_mem::DevicePtr;
use gpu_sim::{KernelError, LaneCtx};

/// `memcpy(dst, src, n)`. Regions must not overlap (C contract); the
/// simulated heap cannot produce overlapping allocations, and intra-region
/// overlap is the caller's responsibility, as in C.
pub fn dl_memcpy(
    lane: &mut LaneCtx<'_, '_>,
    dst: DevicePtr,
    src: DevicePtr,
    n: u64,
) -> Result<(), KernelError> {
    let chunks = n / 8;
    for i in 0..chunks {
        let v = lane.ld::<u64>(src.byte_add(i * 8))?;
        lane.st::<u64>(dst.byte_add(i * 8), v)?;
    }
    for off in (chunks * 8)..n {
        let v = lane.ld::<u8>(src.byte_add(off))?;
        lane.st::<u8>(dst.byte_add(off), v)?;
    }
    Ok(())
}

/// `memset(dst, byte, n)`.
pub fn dl_memset(
    lane: &mut LaneCtx<'_, '_>,
    dst: DevicePtr,
    byte: u8,
    n: u64,
) -> Result<(), KernelError> {
    let word = u64::from_le_bytes([byte; 8]);
    let chunks = n / 8;
    for i in 0..chunks {
        lane.st::<u64>(dst.byte_add(i * 8), word)?;
    }
    for off in (chunks * 8)..n {
        lane.st::<u8>(dst.byte_add(off), byte)?;
    }
    Ok(())
}

/// `memcmp(a, b, n)` → -1/0/1.
pub fn dl_memcmp(
    lane: &mut LaneCtx<'_, '_>,
    a: DevicePtr,
    b: DevicePtr,
    n: u64,
) -> Result<i32, KernelError> {
    for off in 0..n {
        let x = lane.ld::<u8>(a.byte_add(off))?;
        let y = lane.ld::<u8>(b.byte_add(off))?;
        if x != y {
            return Ok(if x < y { -1 } else { 1 });
        }
    }
    Ok(0)
}

/// `strlen(s)` over a NUL-terminated device string.
pub fn dl_strlen(lane: &mut LaneCtx<'_, '_>, s: DevicePtr) -> Result<u64, KernelError> {
    let mut n = 0u64;
    while lane.ld::<u8>(s.byte_add(n))? != 0 {
        n += 1;
    }
    Ok(n)
}

/// `strcmp(a, b)`.
pub fn dl_strcmp(
    lane: &mut LaneCtx<'_, '_>,
    a: DevicePtr,
    b: DevicePtr,
) -> Result<i32, KernelError> {
    let mut off = 0u64;
    loop {
        let x = lane.ld::<u8>(a.byte_add(off))?;
        let y = lane.ld::<u8>(b.byte_add(off))?;
        if x != y {
            return Ok(if x < y { -1 } else { 1 });
        }
        if x == 0 {
            return Ok(0);
        }
        off += 1;
    }
}

/// `strcpy(dst, src)`, returning the number of bytes copied including NUL.
pub fn dl_strcpy(
    lane: &mut LaneCtx<'_, '_>,
    dst: DevicePtr,
    src: DevicePtr,
) -> Result<u64, KernelError> {
    let mut off = 0u64;
    loop {
        let c = lane.ld::<u8>(src.byte_add(off))?;
        lane.st::<u8>(dst.byte_add(off), c)?;
        off += 1;
        if c == 0 {
            return Ok(off);
        }
    }
}

/// Read a NUL-terminated device string into a host `String` (used by RPC
/// stubs that need the text on the host side).
pub fn read_cstr(lane: &mut LaneCtx<'_, '_>, s: DevicePtr) -> Result<String, KernelError> {
    let mut bytes = Vec::new();
    let mut off = 0u64;
    loop {
        let c = lane.ld::<u8>(s.byte_add(off))?;
        if c == 0 {
            break;
        }
        bytes.push(c);
        off += 1;
    }
    String::from_utf8(bytes).map_err(|e| KernelError::App(format!("invalid utf8 in cstr: {e}")))
}

/// Write a host string into device memory as a NUL-terminated C string;
/// the buffer must have room for `s.len() + 1` bytes.
pub fn write_cstr(lane: &mut LaneCtx<'_, '_>, dst: DevicePtr, s: &str) -> Result<(), KernelError> {
    for (i, b) in s.bytes().enumerate() {
        lane.st::<u8>(dst.byte_add(i as u64), b)?;
    }
    lane.st::<u8>(dst.byte_add(s.len() as u64), 0)
}

/// `atoi` over a device string (leading whitespace, optional sign).
pub fn dl_atoi(lane: &mut LaneCtx<'_, '_>, s: DevicePtr) -> Result<i64, KernelError> {
    let text = read_cstr(lane, s)?;
    Ok(parse_c_int(&text))
}

/// `strtod`-style prefix parsing over a device string.
pub fn dl_strtod(lane: &mut LaneCtx<'_, '_>, s: DevicePtr) -> Result<f64, KernelError> {
    let text = read_cstr(lane, s)?;
    Ok(parse_c_float(&text))
}

/// C `strtod`-style prefix parsing of a host string: leading whitespace,
/// optional sign, digits, optional fraction and exponent; garbage after
/// the longest valid prefix is ignored and an empty prefix parses to 0.
pub fn parse_c_float(text: &str) -> f64 {
    let t = text.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0usize;
    if end < bytes.len() && (bytes[end] == b'+' || bytes[end] == b'-') {
        end += 1;
    }
    let digits_start = end;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b'.' {
        end += 1;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
    }
    if end == digits_start || (end == digits_start + 1 && bytes[digits_start] == b'.') {
        return 0.0; // no mantissa digits at all
    }
    // Optional exponent; only consumed if it has digits.
    if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
        let mut e = end + 1;
        if e < bytes.len() && (bytes[e] == b'+' || bytes[e] == b'-') {
            e += 1;
        }
        let exp_digits = e;
        while e < bytes.len() && bytes[e].is_ascii_digit() {
            e += 1;
        }
        if e > exp_digits {
            end = e;
        }
    }
    t[..end].parse().unwrap_or(0.0)
}

/// C `atoi`/`strtol`-style prefix parsing of a host string.
pub fn parse_c_int(text: &str) -> i64 {
    let t = text.trim_start();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    let v: i64 = digits.parse().unwrap_or(0);
    if neg {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::TeamCtx;

    fn run<R>(f: impl FnOnce(&mut LaneCtx<'_, '_>) -> Result<R, KernelError>) -> R {
        let mut mem = DeviceMemory::new(1 << 22);
        let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 0, 48 << 10);
        ctx.serial("t", f).unwrap()
    }

    #[test]
    fn memcpy_all_lengths_around_chunks() {
        run(|lane| {
            let src = lane.dev_alloc(64)?;
            let dst = lane.dev_alloc(64)?;
            for i in 0..64u64 {
                lane.st::<u8>(src.byte_add(i), i as u8)?;
            }
            for n in [0u64, 1, 7, 8, 9, 15, 16, 17, 63] {
                dl_memset(lane, dst, 0xEE, 64)?;
                dl_memcpy(lane, dst, src, n)?;
                for i in 0..n {
                    assert_eq!(lane.ld::<u8>(dst.byte_add(i))?, i as u8, "n={n} i={i}");
                }
                if n < 64 {
                    assert_eq!(lane.ld::<u8>(dst.byte_add(n))?, 0xEE);
                }
            }
            Ok(())
        });
    }

    #[test]
    fn memset_and_memcmp() {
        run(|lane| {
            let a = lane.dev_alloc(32)?;
            let b = lane.dev_alloc(32)?;
            dl_memset(lane, a, 7, 32)?;
            dl_memset(lane, b, 7, 32)?;
            assert_eq!(dl_memcmp(lane, a, b, 32)?, 0);
            lane.st::<u8>(b.byte_add(30), 9)?;
            assert_eq!(dl_memcmp(lane, a, b, 32)?, -1);
            assert_eq!(dl_memcmp(lane, b, a, 32)?, 1);
            assert_eq!(dl_memcmp(lane, a, b, 30)?, 0);
            Ok(())
        });
    }

    #[test]
    fn strings_roundtrip() {
        run(|lane| {
            let buf = lane.dev_alloc(64)?;
            write_cstr(lane, buf, "hello")?;
            assert_eq!(dl_strlen(lane, buf)?, 5);
            assert_eq!(read_cstr(lane, buf)?, "hello");
            let buf2 = lane.dev_alloc(64)?;
            dl_strcpy(lane, buf2, buf)?;
            assert_eq!(dl_strcmp(lane, buf, buf2)?, 0);
            write_cstr(lane, buf2, "hellp")?;
            assert_eq!(dl_strcmp(lane, buf, buf2)?, -1);
            write_cstr(lane, buf2, "hell")?;
            assert_ne!(dl_strcmp(lane, buf, buf2)?, 0);
            Ok(())
        });
    }

    #[test]
    fn strtod_semantics() {
        assert_eq!(parse_c_float("3.25"), 3.25);
        assert_eq!(parse_c_float("  -1.5e3abc"), -1500.0);
        assert_eq!(parse_c_float("+.5"), 0.5);
        assert_eq!(parse_c_float("7"), 7.0);
        assert_eq!(parse_c_float("1e"), 1.0); // dangling exponent ignored
        assert_eq!(parse_c_float("1e+"), 1.0);
        assert_eq!(parse_c_float("."), 0.0);
        assert_eq!(parse_c_float("x9"), 0.0);
        assert_eq!(parse_c_float(""), 0.0);
        run(|lane| {
            let buf = lane.dev_alloc(16)?;
            write_cstr(lane, buf, "-2.5e2")?;
            assert_eq!(dl_strtod(lane, buf)?, -250.0);
            Ok(())
        });
    }

    #[test]
    fn atoi_semantics() {
        assert_eq!(parse_c_int("42"), 42);
        assert_eq!(parse_c_int("  -17abc"), -17);
        assert_eq!(parse_c_int("+8"), 8);
        assert_eq!(parse_c_int("abc"), 0);
        assert_eq!(parse_c_int(""), 0);
        run(|lane| {
            let buf = lane.dev_alloc(16)?;
            write_cstr(lane, buf, "-123")?;
            assert_eq!(dl_atoi(lane, buf)?, -123);
            Ok(())
        });
    }
}
