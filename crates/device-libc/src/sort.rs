//! `qsort`/`bsearch` over typed device arrays.
//!
//! Implemented as introsort-free, allocation-free quicksort with an
//! insertion-sort cutoff — the classic libc shape — issuing its loads and
//! stores through the lane context so sorting shows up in traces.

use gpu_mem::{DevicePtr, Scalar};
use gpu_sim::{KernelError, LaneCtx};

const INSERTION_CUTOFF: u64 = 16;

/// Sort `len` elements of type `T` at `base` ascending (by `partial_cmp`;
/// NaNs sort last, which C's `qsort` leaves unspecified anyway).
pub fn dl_qsort<T: Scalar + PartialOrd>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    len: u64,
) -> Result<(), KernelError> {
    if len > 1 {
        quicksort::<T>(lane, base, 0, len - 1)?;
    }
    Ok(())
}

fn lt<T: PartialOrd>(a: &T, b: &T) -> bool {
    matches!(a.partial_cmp(b), Some(std::cmp::Ordering::Less))
}

fn quicksort<T: Scalar + PartialOrd>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    lo: u64,
    hi: u64,
) -> Result<(), KernelError> {
    let mut lo = lo;
    let mut hi = hi;
    loop {
        if hi - lo < INSERTION_CUTOFF {
            return insertion::<T>(lane, base, lo, hi);
        }
        let p = partition::<T>(lane, base, lo, hi)?;
        // Recurse into the smaller half, loop on the larger (O(log n) stack).
        if p - lo < hi - p {
            if p > lo {
                quicksort::<T>(lane, base, lo, p - 1)?;
            }
            lo = p + 1;
        } else {
            if p < hi {
                quicksort::<T>(lane, base, p + 1, hi)?;
            }
            if p == lo {
                return Ok(());
            }
            hi = p - 1;
        }
        if lo >= hi {
            return Ok(());
        }
    }
}

fn partition<T: Scalar + PartialOrd>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    lo: u64,
    hi: u64,
) -> Result<u64, KernelError> {
    // Median-of-three pivot to dodge sorted-input quadratics.
    let mid = lo + (hi - lo) / 2;
    let (a, b, c) = (
        lane.ld_idx::<T>(base, lo)?,
        lane.ld_idx::<T>(base, mid)?,
        lane.ld_idx::<T>(base, hi)?,
    );
    let pivot_idx = if lt(&a, &b) {
        if lt(&b, &c) {
            mid
        } else if lt(&a, &c) {
            hi
        } else {
            lo
        }
    } else if lt(&a, &c) {
        lo
    } else if lt(&b, &c) {
        hi
    } else {
        mid
    };
    swap::<T>(lane, base, pivot_idx, hi)?;
    let pivot = lane.ld_idx::<T>(base, hi)?;
    let mut store = lo;
    for i in lo..hi {
        let v = lane.ld_idx::<T>(base, i)?;
        if lt(&v, &pivot) {
            swap::<T>(lane, base, i, store)?;
            store += 1;
        }
    }
    swap::<T>(lane, base, store, hi)?;
    Ok(store)
}

fn insertion<T: Scalar + PartialOrd>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    lo: u64,
    hi: u64,
) -> Result<(), KernelError> {
    for i in (lo + 1)..=hi {
        let v = lane.ld_idx::<T>(base, i)?;
        let mut j = i;
        while j > lo {
            let prev = lane.ld_idx::<T>(base, j - 1)?;
            if !lt(&v, &prev) {
                break;
            }
            lane.st_idx::<T>(base, j, prev)?;
            j -= 1;
        }
        lane.st_idx::<T>(base, j, v)?;
    }
    Ok(())
}

fn swap<T: Scalar>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    i: u64,
    j: u64,
) -> Result<(), KernelError> {
    if i == j {
        return Ok(());
    }
    let a = lane.ld_idx::<T>(base, i)?;
    let b = lane.ld_idx::<T>(base, j)?;
    lane.st_idx::<T>(base, i, b)?;
    lane.st_idx::<T>(base, j, a)
}

/// `bsearch`: index of `key` in the sorted array, or the insertion point
/// as `Err` — the "lower bound" both XSBench grid lookups need.
pub fn dl_bsearch<T: Scalar + PartialOrd>(
    lane: &mut LaneCtx<'_, '_>,
    base: DevicePtr,
    len: u64,
    key: T,
) -> Result<Result<u64, u64>, KernelError> {
    let mut lo = 0u64;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = lane.ld_idx::<T>(base, mid)?;
        if lt(&v, &key) {
            lo = mid + 1;
        } else if lt(&key, &v) {
            hi = mid;
        } else {
            return Ok(Ok(mid));
        }
    }
    Ok(Err(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::TeamCtx;

    fn run<R>(f: impl FnOnce(&mut LaneCtx<'_, '_>) -> Result<R, KernelError>) -> R {
        let mut mem = DeviceMemory::new(1 << 22);
        let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 0, 48 << 10);
        ctx.serial("t", f).unwrap()
    }

    fn sort_and_check(mut data: Vec<f64>) {
        run(|lane| {
            let n = data.len() as u64;
            let buf = lane.dev_alloc((8 * n).max(8))?;
            for (i, v) in data.iter().enumerate() {
                lane.st_idx::<f64>(buf, i as u64, *v)?;
            }
            dl_qsort::<f64>(lane, buf, n)?;
            let mut sorted = Vec::new();
            for i in 0..n {
                sorted.push(lane.ld_idx::<f64>(buf, i)?);
            }
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(sorted, data);
            Ok(())
        });
    }

    #[test]
    fn sorts_various_shapes() {
        sort_and_check(vec![]);
        sort_and_check(vec![1.0]);
        sort_and_check(vec![2.0, 1.0]);
        sort_and_check(vec![5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0]);
        sort_and_check((0..100).map(|i| i as f64).collect()); // pre-sorted
        sort_and_check((0..100).rev().map(|i| i as f64).collect()); // reversed
        sort_and_check(vec![3.0; 50]); // all equal
    }

    #[test]
    fn sorts_pseudorandom_large() {
        let mut x = crate::rand::XorShift64::new(99);
        sort_and_check((0..1000).map(|_| x.next_f64() * 1000.0).collect());
    }

    #[test]
    fn sorts_u32_too() {
        run(|lane| {
            let vals = [9u32, 1, 8, 2, 7, 3];
            let buf = lane.dev_alloc(4 * vals.len() as u64)?;
            for (i, v) in vals.iter().enumerate() {
                lane.st_idx::<u32>(buf, i as u64, *v)?;
            }
            dl_qsort::<u32>(lane, buf, vals.len() as u64)?;
            for i in 1..vals.len() as u64 {
                assert!(lane.ld_idx::<u32>(buf, i - 1)? <= lane.ld_idx::<u32>(buf, i)?);
            }
            Ok(())
        });
    }

    #[test]
    fn bsearch_finds_and_reports_insertion_point() {
        run(|lane| {
            let vals = [1.0f64, 3.0, 5.0, 7.0, 9.0];
            let buf = lane.dev_alloc(8 * 5)?;
            for (i, v) in vals.iter().enumerate() {
                lane.st_idx::<f64>(buf, i as u64, *v)?;
            }
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 5.0)?, Ok(2));
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 1.0)?, Ok(0));
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 9.0)?, Ok(4));
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 4.0)?, Err(2));
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 0.0)?, Err(0));
            assert_eq!(dl_bsearch::<f64>(lane, buf, 5, 10.0)?, Err(5));
            Ok(())
        });
    }
}
