//! Device-side stdio: `printf` and friends as RPC stubs.
//!
//! The formatting happens on the device (charged as instruction work); the
//! finished text ships to the host's stdio service in one RPC round trip —
//! the same split the real framework's `printf` stub uses to keep RPC
//! payloads small and round trips rare.

use crate::fmt::{format_c, PrintfArg};
use gpu_sim::{KernelError, LaneCtx};
use host_rpc::{Request, Response};

/// Per-character formatting cost charged to the simulator.
const FMT_COST_PER_CHAR: f64 = 2.0;

fn send(lane: &mut LaneCtx<'_, '_>, req: Request) -> Result<Response, KernelError> {
    let service = req.service();
    let raw = lane.host_call(service, &req.encode())?;
    Response::decode(&raw).map_err(|e| KernelError::HostCallFailed(e.to_string()))
}

/// `printf(fmt, ...)` — returns the number of characters written.
pub fn dl_printf(
    lane: &mut LaneCtx<'_, '_>,
    fmt: &str,
    args: &[PrintfArg],
) -> Result<i32, KernelError> {
    let text = format_c(fmt, args);
    lane.work(text.len() as f64 * FMT_COST_PER_CHAR);
    let n = text.len() as i32;
    let resp = send(
        lane,
        Request::Stdout {
            instance: lane.tag(),
            text,
        },
    )?;
    match resp {
        Response::Ok => Ok(n),
        Response::Err(e) => Err(KernelError::HostCallFailed(e)),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected stdio response {other:?}"
        ))),
    }
}

/// `fprintf(stderr, fmt, ...)`.
pub fn dl_eprintf(
    lane: &mut LaneCtx<'_, '_>,
    fmt: &str,
    args: &[PrintfArg],
) -> Result<i32, KernelError> {
    let text = format_c(fmt, args);
    lane.work(text.len() as f64 * FMT_COST_PER_CHAR);
    let n = text.len() as i32;
    match send(
        lane,
        Request::Stderr {
            instance: lane.tag(),
            text,
        },
    )? {
        Response::Ok => Ok(n),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected stderr response {other:?}"
        ))),
    }
}

/// `snprintf(buf, size, fmt, ...)`: format into a device buffer, NUL
/// terminated, truncating at `size - 1` characters. Returns the length the
/// full text *would* have had (the C contract callers use for sizing).
pub fn dl_snprintf(
    lane: &mut LaneCtx<'_, '_>,
    buf: gpu_mem::DevicePtr,
    size: u64,
    fmt: &str,
    args: &[PrintfArg],
) -> Result<i32, KernelError> {
    let text = format_c(fmt, args);
    lane.work(text.len() as f64 * FMT_COST_PER_CHAR);
    if size == 0 {
        return Ok(text.len() as i32);
    }
    let n = (text.len() as u64).min(size - 1);
    for (i, b) in text.as_bytes()[..n as usize].iter().enumerate() {
        lane.st::<u8>(buf.byte_add(i as u64), *b)?;
    }
    lane.st::<u8>(buf.byte_add(n), 0)?;
    Ok(text.len() as i32)
}

/// `puts(s)` — appends a newline, like C.
pub fn dl_puts(lane: &mut LaneCtx<'_, '_>, s: &str) -> Result<i32, KernelError> {
    dl_printf(lane, "%s\n", &[s.into()])
}

/// `exit(code)` — records the exit code with the host; the caller is
/// responsible for unwinding (returning from `__user_main`).
pub fn dl_exit(lane: &mut LaneCtx<'_, '_>, code: i32) -> Result<(), KernelError> {
    match send(
        lane,
        Request::Exit {
            instance: lane.tag(),
            code,
        },
    )? {
        Response::Ok => Ok(()),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected exit response {other:?}"
        ))),
    }
}

/// `time()`-style query against the host clock service, in nanoseconds.
pub fn dl_clock_ns(lane: &mut LaneCtx<'_, '_>) -> Result<u64, KernelError> {
    match send(
        lane,
        Request::Clock {
            instance: lane.tag(),
        },
    )? {
        Response::Clock(ns) => Ok(ns),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected clock response {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::TeamCtx;
    use host_rpc::HostServices;

    fn with_services<R>(
        instance: u32,
        f: impl FnOnce(&mut LaneCtx<'_, '_>) -> Result<R, KernelError>,
    ) -> (R, HostServices) {
        let mut services = HostServices::default();
        let mut mem = DeviceMemory::new(1 << 20);
        let out;
        {
            let mut hook = |_svc: u32, payload: &[u8]| -> Result<Vec<u8>, String> {
                let req = Request::decode(payload).map_err(|e| e.to_string())?;
                Ok(services.handle(req).encode())
            };
            let mut ctx = TeamCtx::new(&mut mem, instance, 4, 32, instance, 48 << 10);
            ctx.set_host_call(&mut hook, None);
            out = ctx.serial("t", f).unwrap();
        }
        (out, services)
    }

    #[test]
    fn printf_reaches_instance_stream() {
        let (n, services) = with_services(2, |lane| {
            dl_printf(lane, "N = %d, f = %.1f\n", &[5i32.into(), 2.5f64.into()])
        });
        assert_eq!(services.stdout_of(2), "N = 5, f = 2.5\n");
        assert_eq!(n, 15);
        assert_eq!(services.stdout_of(0), "");
    }

    #[test]
    fn eprintf_and_puts() {
        let (_, services) = with_services(0, |lane| {
            dl_eprintf(lane, "warn: %s\n", &["low".into()])?;
            dl_puts(lane, "done")
        });
        assert_eq!(services.stderr_of(0), "warn: low\n");
        assert_eq!(services.stdout_of(0), "done\n");
    }

    #[test]
    fn snprintf_truncates_and_reports_full_length() {
        let ((full, text), _) = with_services(0, |lane| {
            let buf = lane.dev_alloc(8)?;
            let full = dl_snprintf(lane, buf, 8, "n=%d!", &[12345i32.into()])?;
            let text = crate::string::read_cstr(lane, buf)?;
            Ok((full, text))
        });
        assert_eq!(full, 8); // "n=12345!" would be 8 chars
        assert_eq!(text, "n=12345"); // truncated to 7 + NUL
    }

    #[test]
    fn snprintf_zero_size_writes_nothing() {
        let (full, _) = with_services(0, |lane| {
            let buf = lane.dev_alloc(8)?;
            lane.st::<u8>(buf, 0xEE)?;
            let full = dl_snprintf(lane, buf, 0, "%d", &[7i32.into()])?;
            assert_eq!(lane.ld::<u8>(buf)?, 0xEE);
            Ok(full)
        });
        assert_eq!(full, 1);
    }

    #[test]
    fn exit_records_code() {
        let (_, services) = with_services(1, |lane| dl_exit(lane, 42));
        assert_eq!(services.exit_code_of(1), Some(42));
    }

    #[test]
    fn clock_monotone() {
        let ((a, b), _) = with_services(0, |lane| {
            let a = dl_clock_ns(lane)?;
            let b = dl_clock_ns(lane)?;
            Ok((a, b))
        });
        assert!(b > a);
    }
}
