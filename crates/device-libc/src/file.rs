//! `FILE`-style device API over the host filesystem RPC service.

use gpu_mem::DevicePtr;
use gpu_sim::{KernelError, LaneCtx};
use host_rpc::{Request, Response};

/// An open file handle, as returned by [`dl_fopen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlFile {
    fd: u32,
}

fn send(lane: &mut LaneCtx<'_, '_>, req: Request) -> Result<Response, KernelError> {
    let service = req.service();
    let raw = lane.host_call(service, &req.encode())?;
    Response::decode(&raw).map_err(|e| KernelError::HostCallFailed(e.to_string()))
}

/// `fopen(path, mode)`. Returns `None` where C would return `NULL`.
pub fn dl_fopen(
    lane: &mut LaneCtx<'_, '_>,
    path: &str,
    mode: &str,
) -> Result<Option<DlFile>, KernelError> {
    match send(
        lane,
        Request::FOpen {
            instance: lane.tag(),
            path: path.to_string(),
            mode: mode.to_string(),
        },
    )? {
        Response::Fd(fd) => Ok(Some(DlFile { fd })),
        Response::Err(_) => Ok(None),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected fopen response {other:?}"
        ))),
    }
}

/// `fclose(f)`.
pub fn dl_fclose(lane: &mut LaneCtx<'_, '_>, f: DlFile) -> Result<(), KernelError> {
    match send(
        lane,
        Request::FClose {
            instance: lane.tag(),
            fd: f.fd,
        },
    )? {
        Response::Ok => Ok(()),
        Response::Err(e) => Err(KernelError::HostCallFailed(e)),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected fclose response {other:?}"
        ))),
    }
}

/// `fread(buf, 1, n, f)` into device memory; returns bytes read (0 at EOF).
pub fn dl_fread(
    lane: &mut LaneCtx<'_, '_>,
    buf: DevicePtr,
    n: u64,
    f: DlFile,
) -> Result<u64, KernelError> {
    match send(
        lane,
        Request::FRead {
            instance: lane.tag(),
            fd: f.fd,
            len: n as u32,
        },
    )? {
        Response::Bytes(data) => {
            for (i, b) in data.iter().enumerate() {
                lane.st::<u8>(buf.byte_add(i as u64), *b)?;
            }
            Ok(data.len() as u64)
        }
        Response::Err(e) => Err(KernelError::HostCallFailed(e)),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected fread response {other:?}"
        ))),
    }
}

/// `fwrite(buf, 1, n, f)` from device memory; returns bytes written.
pub fn dl_fwrite(
    lane: &mut LaneCtx<'_, '_>,
    buf: DevicePtr,
    n: u64,
    f: DlFile,
) -> Result<u64, KernelError> {
    let mut data = Vec::with_capacity(n as usize);
    for i in 0..n {
        data.push(lane.ld::<u8>(buf.byte_add(i))?);
    }
    match send(
        lane,
        Request::FWrite {
            instance: lane.tag(),
            fd: f.fd,
            data,
        },
    )? {
        Response::Written(w) => Ok(w as u64),
        Response::Err(e) => Err(KernelError::HostCallFailed(e)),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected fwrite response {other:?}"
        ))),
    }
}

/// `fseek(f, offset, whence)`; whence 0/1/2 = SET/CUR/END. Returns the new
/// position (C's `fseek` returns 0; the position is more useful here and
/// `ftell` falls out for free).
pub fn dl_fseek(
    lane: &mut LaneCtx<'_, '_>,
    f: DlFile,
    offset: i64,
    whence: u8,
) -> Result<u64, KernelError> {
    match send(
        lane,
        Request::FSeek {
            instance: lane.tag(),
            fd: f.fd,
            offset,
            whence,
        },
    )? {
        Response::Pos(p) => Ok(p),
        Response::Err(e) => Err(KernelError::HostCallFailed(e)),
        other => Err(KernelError::HostCallFailed(format!(
            "unexpected fseek response {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::TeamCtx;
    use host_rpc::HostServices;

    fn with_services<R>(
        prep: impl FnOnce(&mut HostServices),
        f: impl FnOnce(&mut LaneCtx<'_, '_>) -> Result<R, KernelError>,
    ) -> (R, HostServices) {
        let mut services = HostServices::default();
        prep(&mut services);
        let mut mem = DeviceMemory::new(1 << 20);
        let out;
        {
            let mut hook = |_svc: u32, payload: &[u8]| -> Result<Vec<u8>, String> {
                let req = Request::decode(payload).map_err(|e| e.to_string())?;
                Ok(services.handle(req).encode())
            };
            let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 0, 48 << 10);
            ctx.set_host_call(&mut hook, None);
            out = ctx.serial("t", f).unwrap();
        }
        (out, services)
    }

    #[test]
    fn read_existing_file_into_device_memory() {
        let (bytes, _) = with_services(
            |s| s.add_file("data-1.bin", vec![5, 6, 7, 8]),
            |lane| {
                let buf = lane.dev_alloc(16)?;
                let f = dl_fopen(lane, "data-1.bin", "rb")?.expect("file exists");
                let n = dl_fread(lane, buf, 16, f)?;
                let mut out = Vec::new();
                for i in 0..n {
                    out.push(lane.ld::<u8>(buf.byte_add(i))?);
                }
                dl_fclose(lane, f)?;
                Ok(out)
            },
        );
        assert_eq!(bytes, vec![5, 6, 7, 8]);
    }

    #[test]
    fn missing_file_is_null() {
        let (f, _) = with_services(|_| {}, |lane| dl_fopen(lane, "ghost", "r"));
        assert!(f.is_none());
    }

    #[test]
    fn write_then_verify_on_host() {
        let (_, services) = with_services(
            |_| {},
            |lane| {
                let buf = lane.dev_alloc(8)?;
                for i in 0..4u64 {
                    lane.st::<u8>(buf.byte_add(i), (i * 2) as u8)?;
                }
                let f = dl_fopen(lane, "out.bin", "wb")?.unwrap();
                assert_eq!(dl_fwrite(lane, buf, 4, f)?, 4);
                dl_fclose(lane, f)
            },
        );
        assert_eq!(services.file_contents("out.bin").unwrap(), &[0, 2, 4, 6]);
    }

    #[test]
    fn seek_then_read() {
        let (got, _) = with_services(
            |s| s.add_file("f", (0u8..10).collect()),
            |lane| {
                let buf = lane.dev_alloc(8)?;
                let f = dl_fopen(lane, "f", "r")?.unwrap();
                assert_eq!(dl_fseek(lane, f, 6, 0)?, 6);
                let n = dl_fread(lane, buf, 8, f)?;
                let mut v = Vec::new();
                for i in 0..n {
                    v.push(lane.ld::<u8>(buf.byte_add(i))?);
                }
                Ok(v)
            },
        );
        assert_eq!(got, vec![6, 7, 8, 9]);
    }
}
