//! A C `printf`-style format engine.
//!
//! Supports the conversions the benchmarks and loader need: `%d %i %u %ld
//! %lu %lld %llu %zu %f %e %g %s %c %x %X %p %%` with the `-`, `0`, `+`
//! and space flags, width, and precision. Unsupported directives format as
//! `?(...)` instead of failing, matching the forgiving behaviour device
//! printf implementations adopt.

/// One variadic argument to `printf`.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintfArg {
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Char(char),
    Ptr(u64),
}

impl From<i32> for PrintfArg {
    fn from(v: i32) -> Self {
        PrintfArg::Int(v as i64)
    }
}

impl From<i64> for PrintfArg {
    fn from(v: i64) -> Self {
        PrintfArg::Int(v)
    }
}

impl From<u32> for PrintfArg {
    fn from(v: u32) -> Self {
        PrintfArg::UInt(v as u64)
    }
}

impl From<u64> for PrintfArg {
    fn from(v: u64) -> Self {
        PrintfArg::UInt(v)
    }
}

impl From<usize> for PrintfArg {
    fn from(v: usize) -> Self {
        PrintfArg::UInt(v as u64)
    }
}

impl From<f64> for PrintfArg {
    fn from(v: f64) -> Self {
        PrintfArg::Float(v)
    }
}

impl From<&str> for PrintfArg {
    fn from(v: &str) -> Self {
        PrintfArg::Str(v.to_string())
    }
}

impl From<char> for PrintfArg {
    fn from(v: char) -> Self {
        PrintfArg::Char(v)
    }
}

#[derive(Default)]
struct Spec {
    left: bool,
    zero: bool,
    plus: bool,
    space: bool,
    width: Option<usize>,
    precision: Option<usize>,
}

impl Spec {
    fn pad(&self, body: String, numeric: bool) -> String {
        let Some(w) = self.width else { return body };
        if body.len() >= w {
            return body;
        }
        let fill = w - body.len();
        if self.left {
            let mut s = body;
            s.push_str(&" ".repeat(fill));
            s
        } else if self.zero && numeric && self.precision.is_none() {
            // Zero padding goes after any sign.
            let (sign, digits) = match body.strip_prefix(['-', '+']) {
                Some(rest) => (&body[..1], rest),
                None => ("", body.as_str()),
            };
            format!("{}{}{}", sign, "0".repeat(fill), digits)
        } else {
            format!("{}{}", " ".repeat(fill), body)
        }
    }

    fn sign_prefix(&self, negative: bool) -> &'static str {
        if negative {
            "-"
        } else if self.plus {
            "+"
        } else if self.space {
            " "
        } else {
            ""
        }
    }
}

fn arg_as_i64(a: &PrintfArg) -> i64 {
    match a {
        PrintfArg::Int(v) => *v,
        PrintfArg::UInt(v) => *v as i64,
        PrintfArg::Float(v) => *v as i64,
        PrintfArg::Char(c) => *c as i64,
        PrintfArg::Ptr(p) => *p as i64,
        PrintfArg::Str(_) => 0,
    }
}

fn arg_as_u64(a: &PrintfArg) -> u64 {
    match a {
        PrintfArg::Int(v) => *v as u64,
        PrintfArg::UInt(v) => *v,
        PrintfArg::Float(v) => *v as u64,
        PrintfArg::Char(c) => *c as u64,
        PrintfArg::Ptr(p) => *p,
        PrintfArg::Str(_) => 0,
    }
}

fn arg_as_f64(a: &PrintfArg) -> f64 {
    match a {
        PrintfArg::Int(v) => *v as f64,
        PrintfArg::UInt(v) => *v as f64,
        PrintfArg::Float(v) => *v,
        PrintfArg::Char(c) => *c as u32 as f64,
        PrintfArg::Ptr(p) => *p as f64,
        PrintfArg::Str(_) => 0.0,
    }
}

/// Format `fmt` with `args`, C-style. Missing arguments format as empty;
/// extra arguments are ignored — printf's permissive contract.
pub fn format_c(fmt: &str, args: &[PrintfArg]) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    let take = |next_arg: &mut usize| -> Option<&PrintfArg> {
        let a = args.get(*next_arg);
        *next_arg += 1;
        a
    };

    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Flags.
        let mut spec = Spec::default();
        loop {
            match chars.peek() {
                Some('-') => {
                    spec.left = true;
                    chars.next();
                }
                Some('0') => {
                    spec.zero = true;
                    chars.next();
                }
                Some('+') => {
                    spec.plus = true;
                    chars.next();
                }
                Some(' ') => {
                    spec.space = true;
                    chars.next();
                }
                _ => break,
            }
        }
        // Width.
        let mut width = String::new();
        while let Some(d) = chars.peek().filter(|c| c.is_ascii_digit()) {
            width.push(*d);
            chars.next();
        }
        if !width.is_empty() {
            spec.width = width.parse().ok();
        }
        // Precision.
        if chars.peek() == Some(&'.') {
            chars.next();
            let mut prec = String::new();
            while let Some(d) = chars.peek().filter(|c| c.is_ascii_digit()) {
                prec.push(*d);
                chars.next();
            }
            spec.precision = Some(prec.parse().unwrap_or(0));
        }
        // Length modifiers (parsed and ignored; our args are 64-bit).
        while matches!(
            chars.peek(),
            Some('l') | Some('h') | Some('z') | Some('j') | Some('t')
        ) {
            chars.next();
        }
        let Some(conv) = chars.next() else {
            out.push('%');
            break;
        };
        match conv {
            '%' => out.push('%'),
            'd' | 'i' => {
                let v = take(&mut next_arg).map(arg_as_i64).unwrap_or(0);
                let body = format!("{}{}", spec.sign_prefix(v < 0), v.unsigned_abs());
                out.push_str(&spec.pad(body, true));
            }
            'u' => {
                let v = take(&mut next_arg).map(arg_as_u64).unwrap_or(0);
                out.push_str(&spec.pad(v.to_string(), true));
            }
            'x' => {
                let v = take(&mut next_arg).map(arg_as_u64).unwrap_or(0);
                out.push_str(&spec.pad(format!("{v:x}"), true));
            }
            'X' => {
                let v = take(&mut next_arg).map(arg_as_u64).unwrap_or(0);
                out.push_str(&spec.pad(format!("{v:X}"), true));
            }
            'p' => {
                let v = take(&mut next_arg).map(arg_as_u64).unwrap_or(0);
                out.push_str(&spec.pad(format!("0x{v:x}"), false));
            }
            'f' | 'F' => {
                let v = take(&mut next_arg).map(arg_as_f64).unwrap_or(0.0);
                let prec = spec.precision.unwrap_or(6);
                let body = format!(
                    "{}{:.*}",
                    spec.sign_prefix(v.is_sign_negative()),
                    prec,
                    v.abs()
                );
                out.push_str(&spec.pad(body, true));
            }
            'e' | 'E' => {
                let v = take(&mut next_arg).map(arg_as_f64).unwrap_or(0.0);
                let prec = spec.precision.unwrap_or(6);
                let mut body = format!("{:.*e}", prec, v);
                // Rust prints `1.5e3`; C wants `1.5e+03`.
                if let Some(epos) = body.find('e') {
                    let (mant, exp) = body.split_at(epos);
                    let exp: i32 = exp[1..].parse().unwrap_or(0);
                    body = format!(
                        "{}e{}{:02}",
                        mant,
                        if exp < 0 { '-' } else { '+' },
                        exp.abs()
                    );
                }
                if conv == 'E' {
                    body = body.to_uppercase();
                }
                out.push_str(&spec.pad(body, true));
            }
            'g' | 'G' => {
                let v = take(&mut next_arg).map(arg_as_f64).unwrap_or(0.0);
                let body = format!("{v}");
                out.push_str(&spec.pad(body, true));
            }
            's' => {
                let s = match take(&mut next_arg) {
                    Some(PrintfArg::Str(s)) => s.clone(),
                    Some(other) => format!("{other:?}"),
                    None => String::new(),
                };
                let s = match spec.precision {
                    Some(p) => s.chars().take(p).collect(),
                    None => s,
                };
                out.push_str(&spec.pad(s, false));
            }
            'c' => {
                let c = match take(&mut next_arg) {
                    Some(PrintfArg::Char(c)) => *c,
                    Some(a) => char::from_u32(arg_as_u64(a) as u32).unwrap_or('?'),
                    None => '\0',
                };
                out.push_str(&spec.pad(c.to_string(), false));
            }
            other => {
                out.push_str(&format!("?({other})"));
            }
        }
    }
    out
}

/// Convenience macro-free helper for the common "printf with mixed args"
/// call shape used by the ported benchmarks.
pub fn sprintf(fmt: &str, args: &[PrintfArg]) -> String {
    format_c(fmt, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(fmt: &str, args: &[PrintfArg]) -> String {
        format_c(fmt, args)
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(f("hello world\n", &[]), "hello world\n");
        assert_eq!(f("100%% sure", &[]), "100% sure");
    }

    #[test]
    fn integers() {
        assert_eq!(f("%d", &[(-42i64).into()]), "-42");
        assert_eq!(f("%i", &[7i32.into()]), "7");
        assert_eq!(f("%u", &[42u32.into()]), "42");
        assert_eq!(f("%5d", &[42i32.into()]), "   42");
        assert_eq!(f("%-5d|", &[42i32.into()]), "42   |");
        assert_eq!(f("%05d", &[42i32.into()]), "00042");
        assert_eq!(f("%05d", &[(-42i64).into()]), "-0042");
        assert_eq!(f("%+d", &[42i32.into()]), "+42");
        assert_eq!(
            f("%ld %lu %zu", &[1i64.into(), 2u64.into(), 3usize.into()]),
            "1 2 3"
        );
    }

    #[test]
    fn hex_and_pointers() {
        assert_eq!(f("%x", &[255u32.into()]), "ff");
        assert_eq!(f("%X", &[255u32.into()]), "FF");
        assert_eq!(f("%08x", &[0xABCu32.into()]), "00000abc");
        assert_eq!(f("%p", &[PrintfArg::Ptr(0x7000_0000)]), "0x70000000");
    }

    #[test]
    fn floats() {
        assert_eq!(f("%f", &[1.5f64.into()]), "1.500000");
        assert_eq!(f("%.2f", &[std::f64::consts::PI.into()]), "3.14");
        assert_eq!(f("%.0f", &[2.6f64.into()]), "3");
        assert_eq!(f("%8.2f", &[std::f64::consts::PI.into()]), "    3.14");
        assert_eq!(f("%-8.2f|", &[std::f64::consts::PI.into()]), "3.14    |");
        assert_eq!(f("%.2f", &[(-1.005f64).into()]), "-1.00");
    }

    #[test]
    fn scientific() {
        assert_eq!(f("%.3e", &[12345.678f64.into()]), "1.235e+04");
        assert_eq!(f("%.1e", &[0.00123f64.into()]), "1.2e-03");
        assert_eq!(f("%.1E", &[0.00123f64.into()]), "1.2E-03");
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(f("[%s]", &["abc".into()]), "[abc]");
        assert_eq!(f("[%6s]", &["abc".into()]), "[   abc]");
        assert_eq!(f("[%-6s]", &["abc".into()]), "[abc   ]");
        assert_eq!(f("[%.2s]", &["abcdef".into()]), "[ab]");
        assert_eq!(f("%c%c", &['o'.into(), 'k'.into()]), "ok");
    }

    #[test]
    fn missing_and_extra_args_tolerated() {
        assert_eq!(f("%d %d", &[1i32.into()]), "1 0");
        assert_eq!(f("%d", &[1i32.into(), 2i32.into()]), "1");
    }

    #[test]
    fn unknown_conversion_marked() {
        assert_eq!(f("%q", &[]), "?(q)");
    }

    #[test]
    fn xsbench_style_line() {
        let line = f(
            "Lookups/s: %.0f  (verification hash: %x)\n",
            &[1.234e7f64.into(), 0xBEEFu32.into()],
        );
        assert_eq!(line, "Lookups/s: 12340000  (verification hash: beef)\n");
    }
}
