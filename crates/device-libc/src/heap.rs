//! Device-side heap management (`malloc` family).
//!
//! The allocations land in the simulated device heap, tagged with the
//! calling team's instance id — exactly the property the ensemble paper's
//! §4.3 analysis relies on: each instance's data lives in its own
//! non-contiguous heap area.

use gpu_mem::{DevicePtr, NULL_DEVICE_PTR};
use gpu_sim::{KernelError, LaneCtx};

/// `void *malloc(size_t size)`. Zero-size requests return null, matching
/// the common C behaviour.
pub fn dl_malloc(lane: &mut LaneCtx<'_, '_>, size: u64) -> Result<DevicePtr, KernelError> {
    if size == 0 {
        return Ok(NULL_DEVICE_PTR);
    }
    lane.dev_alloc(size)
}

/// `void free(void *p)`. Freeing null is a no-op.
pub fn dl_free(lane: &mut LaneCtx<'_, '_>, p: DevicePtr) -> Result<(), KernelError> {
    if p.is_null() {
        return Ok(());
    }
    lane.dev_free(p)
}

/// `void *calloc(size_t n, size_t size)` — zeroed allocation. The device
/// heap zero-fills fresh materialized allocations, so no explicit memset
/// is needed; overflow in `n * size` returns null.
pub fn dl_calloc(lane: &mut LaneCtx<'_, '_>, n: u64, size: u64) -> Result<DevicePtr, KernelError> {
    let Some(total) = n.checked_mul(size) else {
        return Ok(NULL_DEVICE_PTR);
    };
    dl_malloc(lane, total)
}

/// `void *realloc(void *p, size_t new_size)` with the classic edge cases:
/// `realloc(NULL, n)` = `malloc(n)`, `realloc(p, 0)` = `free(p)` + null.
///
/// `old_size` must be passed by the caller because the C allocation size is
/// not recoverable through the device API (the simulator rounds regions to
/// its alignment).
pub fn dl_realloc(
    lane: &mut LaneCtx<'_, '_>,
    p: DevicePtr,
    old_size: u64,
    new_size: u64,
) -> Result<DevicePtr, KernelError> {
    if p.is_null() {
        return dl_malloc(lane, new_size);
    }
    if new_size == 0 {
        dl_free(lane, p)?;
        return Ok(NULL_DEVICE_PTR);
    }
    let np = dl_malloc(lane, new_size)?;
    let copy = old_size.min(new_size);
    crate::string::dl_memcpy(lane, np, p, copy)?;
    dl_free(lane, p)?;
    Ok(np)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::TeamCtx;

    fn with_lane<R>(f: impl FnOnce(&mut LaneCtx<'_, '_>) -> Result<R, KernelError>) -> R {
        let mut mem = DeviceMemory::new(1 << 22);
        let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 7, 48 << 10);
        ctx.serial("test", f).unwrap()
    }

    #[test]
    fn malloc_free_roundtrip() {
        with_lane(|lane| {
            let p = dl_malloc(lane, 128)?;
            assert!(!p.is_null());
            lane.st::<u64>(p, 99)?;
            assert_eq!(lane.ld::<u64>(p)?, 99);
            dl_free(lane, p)?;
            Ok(())
        });
    }

    #[test]
    fn malloc_zero_is_null_and_free_null_ok() {
        with_lane(|lane| {
            let p = dl_malloc(lane, 0)?;
            assert!(p.is_null());
            dl_free(lane, p)?;
            Ok(())
        });
    }

    #[test]
    fn calloc_zeroes_and_checks_overflow() {
        with_lane(|lane| {
            let p = dl_calloc(lane, 16, 8)?;
            for i in 0..16 {
                assert_eq!(lane.ld_idx::<u64>(p, i)?, 0);
            }
            let of = dl_calloc(lane, u64::MAX, 16)?;
            assert!(of.is_null());
            Ok(())
        });
    }

    #[test]
    fn realloc_preserves_prefix() {
        with_lane(|lane| {
            let p = dl_malloc(lane, 32)?;
            for i in 0..4u64 {
                lane.st_idx::<u64>(p, i, i * 10)?;
            }
            let q = dl_realloc(lane, p, 32, 128)?;
            for i in 0..4u64 {
                assert_eq!(lane.ld_idx::<u64>(q, i)?, i * 10);
            }
            // Shrink keeps what fits.
            let r = dl_realloc(lane, q, 128, 16)?;
            assert_eq!(lane.ld_idx::<u64>(r, 1)?, 10);
            // To zero size frees.
            let z = dl_realloc(lane, r, 16, 0)?;
            assert!(z.is_null());
            Ok(())
        });
    }

    #[test]
    fn allocations_carry_instance_tag() {
        let mut mem = DeviceMemory::new(1 << 22);
        let p = {
            let mut ctx = TeamCtx::new(&mut mem, 3, 8, 32, 3, 48 << 10);
            ctx.serial("alloc", |lane| dl_malloc(lane, 64)).unwrap()
        };
        assert_eq!(mem.region_of(p.0).unwrap().tag, 3);
    }
}
