//! Math shims.
//!
//! Functionally these delegate to the host's `f64` operations (bit-exact
//! with device libm for the benchmark's purposes); their value is charging
//! *consistent instruction costs* to the simulator so compute-bound and
//! memory-bound benchmarks keep their relative arithmetic intensity.

use gpu_sim::LaneCtx;

/// Instruction cost of each transcendental on the modeled device
/// (multi-instruction SFU sequences on real hardware).
mod cost {
    pub const SQRT: f64 = 8.0;
    pub const DIV: f64 = 8.0;
    pub const EXP: f64 = 16.0;
    pub const LOG: f64 = 16.0;
    pub const POW: f64 = 32.0;
    pub const TRIG: f64 = 16.0;
    pub const FMA: f64 = 1.0;
}

pub fn dl_sqrt(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::SQRT);
    x.sqrt()
}

pub fn dl_div(lane: &mut LaneCtx<'_, '_>, a: f64, b: f64) -> f64 {
    lane.work(cost::DIV);
    a / b
}

pub fn dl_exp(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::EXP);
    x.exp()
}

pub fn dl_log(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::LOG);
    x.ln()
}

pub fn dl_pow(lane: &mut LaneCtx<'_, '_>, x: f64, y: f64) -> f64 {
    lane.work(cost::POW);
    x.powf(y)
}

pub fn dl_sin(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::TRIG);
    x.sin()
}

pub fn dl_cos(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::TRIG);
    x.cos()
}

pub fn dl_fabs(lane: &mut LaneCtx<'_, '_>, x: f64) -> f64 {
    lane.work(cost::FMA);
    x.abs()
}

/// Fused multiply-add: `a * b + c`.
pub fn dl_fma(lane: &mut LaneCtx<'_, '_>, a: f64, b: f64, c: f64) -> f64 {
    lane.work(cost::FMA);
    a.mul_add(b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::DeviceMemory;
    use gpu_sim::{KernelError, TeamCtx};

    #[test]
    fn values_match_std_and_cost_accrues() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut ctx = TeamCtx::new(&mut mem, 0, 1, 32, 0, 48 << 10);
        ctx.serial("math", |lane| {
            assert_eq!(dl_sqrt(lane, 9.0), 3.0);
            assert!((dl_exp(lane, 1.0) - std::f64::consts::E).abs() < 1e-12);
            assert!((dl_log(lane, std::f64::consts::E) - 1.0).abs() < 1e-12);
            assert_eq!(dl_pow(lane, 2.0, 10.0), 1024.0);
            assert!((dl_sin(lane, 0.0)).abs() < 1e-12);
            assert_eq!(dl_cos(lane, 0.0), 1.0);
            assert_eq!(dl_fabs(lane, -4.0), 4.0);
            assert_eq!(dl_fma(lane, 2.0, 3.0, 1.0), 7.0);
            assert_eq!(dl_div(lane, 10.0, 4.0), 2.5);
            Ok::<(), KernelError>(())
        })
        .unwrap();
        let trace = ctx.finish();
        // All that math must have charged more than the prologue alone.
        assert!(trace.total_insts() > 120.0 + 90.0);
    }
}
