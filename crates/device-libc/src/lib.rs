//! Partial libc for device execution.
//!
//! The direct-GPU-compilation framework ships a partial C library so that
//! legacy host code runs on the device unmodified (paper Fig. 2, "partial
//! libc"). This crate is that library for the simulated device:
//!
//! * `malloc`/`free`-style heap management over the device heap, with
//!   instance-tagged allocations ([`heap`]);
//! * a `printf` family: a full-featured format engine ([`fmt::format_c`])
//!   plus device stubs that ship the text to the host stdio RPC service
//!   ([`stdio`]);
//! * `mem*`/`str*` operations over device memory ([`string`]);
//! * deterministic PRNGs matching the benchmarks' LCG usage ([`rand`]);
//! * `qsort`/`bsearch` on device arrays ([`sort`]);
//! * math shims that charge consistent instruction costs to the simulator
//!   ([`math`]);
//! * a `FILE`-style API over the host filesystem RPC service ([`file`](mod@file)).
//!
//! All device-facing entry points take the simulator's
//! [`gpu_sim::LaneCtx`], mirroring how real device libc routines execute in
//! the calling thread's context.

pub mod file;
pub mod fmt;
pub mod heap;
pub mod math;
pub mod rand;
pub mod sort;
pub mod stdio;
pub mod string;

pub use fmt::{format_c, PrintfArg};
pub use heap::{dl_calloc, dl_free, dl_malloc, dl_realloc};
pub use rand::{Lcg64, XorShift64};
pub use stdio::dl_printf;
