//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented without syn/quote (neither is available offline): the input
//! token stream is walked directly to recover the type's shape — struct
//! with named fields, tuple/newtype struct, unit struct, or enum whose
//! variants are unit / newtype / tuple / struct-like — and the impl is
//! emitted as a string parsed back into a `TokenStream`.
//!
//! Encoding matches serde's defaults for the shapes this workspace uses:
//! named structs become objects, newtype structs are transparent, tuple
//! structs become arrays, and enums use external tagging
//! (`"Variant"` / `{"Variant": ...}`).
//!
//! Unsupported (and rejected loudly): generic parameters and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    gen_serialize(&ty)
        .parse()
        .expect("serde_derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    gen_deserialize(&ty)
        .parse()
        .expect("serde_derive: generated impl parses")
}

struct TypeDef {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_type(input: TokenStream) -> TypeDef {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw}`"),
    };
    TypeDef { name, kind }
}

/// Field names of a `{ ... }` struct body. Types are skipped (comma-split
/// at angle-bracket depth 0); serde attributes are rejected.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        reject_serde_attr(&g.stream().to_string());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde_derive: expected field name, got {tok:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type: everything to the next comma at angle depth 0.
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut pending = false; // tokens seen since the last top-level comma
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1; // no trailing comma after the final field
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    reject_serde_attr(&g.stream().to_string());
                }
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde_derive: expected variant name, got {tok:?}");
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            shape,
        });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("serde_derive: expected `,` between variants, got {other:?}"),
        }
    }
    variants
}

fn reject_serde_attr(attr: &str) {
    if attr.trim_start().starts_with("serde") {
        panic!("serde_derive shim: #[serde(...)] attributes are not supported");
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(ty: &TypeDef) -> String {
    let name = &ty.name;
    let body = match &ty.kind {
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(ty: &TypeDef) -> String {
    let name = &ty.name;
    let body = match &ty.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                .collect();
            format!(
                "let obj = match v {{ \
                   ::serde::Value::Object(o) => o, \
                   other => return ::std::result::Result::Err(\
                     ::std::format!(\"expected object for {name}, got {{other:?}}\")), \
                 }}; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = match v {{ \
                   ::serde::Value::Array(a) if a.len() == {n} => a, \
                   other => return ::std::result::Result::Err(\
                     ::std::format!(\"expected {n}-element array for {name}, got {{other:?}}\")), \
                 }}; \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let arr = match inner {{ \
                                   ::serde::Value::Array(a) if a.len() == {n} => a, \
                                   other => return ::std::result::Result::Err(\
                                     ::std::format!(\"bad payload for {name}::{vn}: {{other:?}}\")), \
                                 }}; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let obj = match inner {{ \
                                   ::serde::Value::Object(o) => o, \
                                   other => return ::std::result::Result::Err(\
                                     ::std::format!(\"bad payload for {name}::{vn}: {{other:?}}\")), \
                                 }}; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {} \
                     other => ::std::result::Result::Err(\
                       ::std::format!(\"unknown {name} variant {{other:?}}\")), \
                   }}, \
                   ::serde::Value::Object(o) if o.len() == 1 => {{ \
                     let (tag, inner) = &o[0]; \
                     let _ = inner; \
                     match tag.as_str() {{ \
                       {} \
                       other => ::std::result::Result::Err(\
                         ::std::format!(\"unknown {name} variant {{other:?}}\")), \
                     }} \
                   }}, \
                   other => ::std::result::Result::Err(\
                     ::std::format!(\"expected {name} variant, got {{other:?}}\")), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::std::string::String> {{ {body} }} }}"
    )
}
