//! Minimal, offline stand-in for `criterion`.
//!
//! Covers the harness surface this workspace's `[[bench]]` targets use:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`. Instead of criterion's statistical sampling it times
//! a small fixed number of iterations and prints mean wall-clock time —
//! enough to keep the sweeps exercised and compare runs coarsely.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Bencher {
    /// Mean wall-clock duration of the measured closure, recorded by
    /// [`Bencher::iter`].
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed() / self.iters;
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 3,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 3, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this as the statistical sample count; here it caps
    /// the iteration count per bench (min 1, max 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).clamp(1, 10);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters,
    };
    f(&mut b);
    eprintln!("  {label}: {:?} (mean of {iters})", b.elapsed);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
