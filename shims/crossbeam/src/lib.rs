//! Minimal, offline stand-in for `crossbeam`, covering the `channel`
//! surface this workspace uses: `unbounded`, `bounded`, clonable
//! senders, and blocking `recv`. Backed by `std::sync::mpsc`; the one
//! API difference papered over is that crossbeam has a single `Sender`
//! type where std splits `Sender`/`SyncSender`.

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(Kind<T>);

    enum Kind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Kind::Unbounded(tx) => Sender(Kind::Unbounded(tx.clone())),
                Kind::Bounded(tx) => Sender(Kind::Bounded(tx.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Kind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Kind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Kind::Unbounded(tx)), Receiver(rx))
    }

    /// Capacity 0 degrades to a rendezvous channel, matching crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Kind::Bounded(tx)), Receiver(rx))
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }
}
