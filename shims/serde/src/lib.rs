//! Minimal, offline stand-in for `serde`.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships a value-model serialization core that covers
//! exactly the surface this repo uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums (external tagging), plus the container and
//! scalar impls those derives need. `serde_json` (also shimmed) renders
//! [`Value`] trees to JSON and parses them back.
//!
//! Not implemented (unused by this workspace): `#[serde(...)]` attributes,
//! borrowed deserialization, generic derives, non-self-describing formats.

use std::collections::{BTreeMap, BTreeSet};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value: the interchange model between
/// `Serialize`/`Deserialize` impls and concrete formats.
///
/// Objects preserve insertion order so serialized output is deterministic
/// and mirrors field declaration order, like real `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Any numeric variant, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object key lookup (first match), mirroring `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

// `Value` round-trips through itself, like real `serde_json::Value` —
// lets callers serialize hand-built trees and parse arbitrary JSON.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;

    /// Hook for fields absent from an object: `Option` yields `None`,
    /// everything else is an error (reported with the field name by
    /// [`field`]).
    #[doc(hidden)]
    fn absent() -> Result<Self, String> {
        Err("missing".to_string())
    }
}

/// Derive-support helper: fetch and decode a named field of an object.
#[doc(hidden)]
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, String> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| format!("field `{name}`: {e}")),
        None => T::absent().map_err(|_| format!("missing field `{name}`")),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = v.as_u64().ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = v.as_i64().ok_or_else(|| format!("expected integer, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v:?}"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        let s = v
            .as_str()
            .ok_or_else(|| format!("expected string, got {v:?}"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(format!("expected single-char string, got {s:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
    fn absent() -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Map keys must render as JSON object keys (strings), like serde_json's
/// integer-key support.
pub trait MapKey: Ord + Sized {
    fn to_key(&self) -> String;
    fn from_key(k: &str) -> Result<Self, String>;
}
impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(k: &str) -> Result<Self, String> {
        Ok(k.to_string())
    }
}
macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(k: &str) -> Result<Self, String> {
                k.parse().map_err(|_| format!("bad {} map key {k:?}", stringify!($t)))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let arr = v.as_array().ok_or_else(|| format!("expected array, got {v:?}"))?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(format!("expected {expect}-tuple, got {} elements", arr.len()));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
