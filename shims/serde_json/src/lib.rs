//! Minimal, offline stand-in for `serde_json` over the vendored serde
//! shim's [`Value`] model: compact and pretty writers plus a strict
//! recursive-descent parser.

pub use serde::Value;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialize to the intermediate [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(Error)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value_str(s)?;
    T::from_value(&v).map_err(Error)
}

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&f.to_string());
    } else {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // the writer total while staying parseable.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------- parsing

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".into()))?;
                        // Surrogate pairs are not needed for this
                        // workspace's data; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() {
        return Err(Error(format!("expected value at byte {start}")));
    }
    let float_like = text.contains(['.', 'e', 'E']);
    if !float_like {
        if let Some(stripped) = text.strip_prefix('-') {
            if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                return text
                    .parse::<i64>()
                    .map(Value::I64)
                    .map_err(|_| Error(format!("integer out of range: {text}")));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("bad number: {text}")))
}
