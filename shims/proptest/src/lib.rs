//! Minimal, offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! a deterministic property-testing core covering the surface its test
//! suites use: the `proptest!` / `prop_compose!` / `prop_oneof!` macro
//! family, `prop_assert*` / `prop_assume!`, `any::<T>()`, integer and
//! float range strategies, `Just`, tuple strategies, `.prop_map`,
//! `prop::collection::{vec, btree_set}`, `prop::sample::select`, and
//! regex-subset string strategies.
//!
//! Differences from real proptest: no shrinking (failures report the
//! generated inputs via the assertion message only), and generation is
//! seeded deterministically per test so runs are reproducible.

pub mod test_runner {
    /// Runner configuration; `prelude` re-exports this as `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Abort after this many `prop_assume!` rejections per test.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; the sim-heavy suites in this
            // workspace keep `cargo test` tolerable at 32.
            Config {
                cases: 32,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip the case, generate another.
        Reject,
        /// An assertion failed — the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xorshift64* generator; seeded from the test name so
    /// each test explores a distinct but reproducible sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded_from(name: &str) -> Self {
            // FNV-1a over the test name, never zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree / shrinking: strategies produce one value per draw.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives — backs `prop_oneof!`.
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].new_value(rng)
        }
    }

    /// Closure-backed strategy — backs `prop_compose!`.
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
        FnStrategy { f }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi as u64 - lo as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128;
                    if span == u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64 + 1) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String literals act as regex-subset strategies producing matching
    /// strings (see [`crate::string`] for the supported subset).
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Function-pointer strategy for `any::<T>()`.
    pub struct AnyStrategy<T>(fn(&mut TestRng) -> T);

    impl<T> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub trait Arbitrary: Sized {
        fn any_strategy() -> AnyStrategy<Self>;
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::any_strategy()
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn any_strategy() -> AnyStrategy<Self> {
                    AnyStrategy(|rng| rng.next_u64() as $t)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn any_strategy() -> AnyStrategy<Self> {
            AnyStrategy(|rng| rng.gen_bool())
        }
    }

    impl Arbitrary for f64 {
        fn any_strategy() -> AnyStrategy<Self> {
            AnyStrategy(|rng| match rng.below(16) {
                0 => 0.0,
                1 => -0.0,
                2 => 1.0,
                3 => -1.0,
                4 => f64::INFINITY,
                5 => f64::NEG_INFINITY,
                6 => f64::NAN,
                7 => f64::MAX,
                8 => f64::MIN_POSITIVE,
                _ => {
                    // Sign * exponent-spread magnitude, always finite.
                    let sign = if rng.gen_bool() { 1.0 } else { -1.0 };
                    let exp = rng.below(61) as i32 - 30;
                    sign * rng.unit_f64() * 10f64.powi(exp)
                }
            })
        }
    }

    impl Arbitrary for f32 {
        fn any_strategy() -> AnyStrategy<Self> {
            AnyStrategy(|rng| (rng.unit_f64() as f32 - 0.5) * 2e6)
        }
    }

    impl Arbitrary for char {
        fn any_strategy() -> AnyStrategy<Self> {
            AnyStrategy(|rng| (0x20 + rng.below(0x5F) as u8) as char)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count bound for collection strategies: `n`, `a..b`, `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }
    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }
    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            // Duplicates shrink the set; retry until the target size or an
            // attempt cap (the element space may be smaller than `target`).
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies:
    //! literals, `\`-escapes, `.`, character classes (ranges, negation,
    //! and Java-style `&&[^...]` subtraction), groups with `|`, and the
    //! quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`, `{m,}`.

    use crate::test_runner::TestRng;

    const UNBOUNDED_MAX: usize = 8;

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    enum Atom {
        Chars(Vec<char>),
        Group(Vec<Vec<Piece>>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let seq = parse_seq(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex `{pattern}` (stopped at char {pos})"
        );
        let mut out = String::new();
        emit_seq(&seq, rng, &mut out);
        out
    }

    fn emit_seq(seq: &[Piece], rng: &mut TestRng, out: &mut String) {
        for piece in seq {
            let span = piece.max - piece.min;
            let n = piece.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span as u64 + 1) as usize
                };
            for _ in 0..n {
                match &piece.atom {
                    Atom::Chars(set) => {
                        let idx = rng.below(set.len() as u64) as usize;
                        out.push(set[idx]);
                    }
                    Atom::Group(alts) => {
                        let idx = rng.below(alts.len() as u64) as usize;
                        emit_seq(&alts[idx], rng, out);
                    }
                }
            }
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Piece> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let atom = match chars[*pos] {
                ')' | '|' => break,
                '[' => {
                    *pos += 1;
                    Atom::Chars(parse_class(chars, pos, pat))
                }
                '(' => {
                    *pos += 1;
                    let mut alts = vec![parse_seq(chars, pos, pat)];
                    while *pos < chars.len() && chars[*pos] == '|' {
                        *pos += 1;
                        alts.push(parse_seq(chars, pos, pat));
                    }
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unterminated group in regex `{pat}`"
                    );
                    *pos += 1;
                    Atom::Group(alts)
                }
                '.' => {
                    *pos += 1;
                    Atom::Chars((0x20u8..=0x7E).map(|b| b as char).collect())
                }
                '\\' => {
                    *pos += 1;
                    let c = escape_char(chars, pos, pat);
                    Atom::Chars(vec![c])
                }
                c => {
                    *pos += 1;
                    Atom::Chars(vec![c])
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pat);
            seq.push(Piece { atom, min, max });
        }
        seq
    }

    fn escape_char(chars: &[char], pos: &mut usize, pat: &str) -> char {
        assert!(*pos < chars.len(), "dangling escape in regex `{pat}`");
        let c = chars[*pos];
        *pos += 1;
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other, // \. \\ \[ \- etc: the literal character
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pat: &str) -> (usize, usize) {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                *pos += 1;
                (1, UNBOUNDED_MAX)
            }
            Some('{') => {
                *pos += 1;
                let mut min_text = String::new();
                while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                    min_text.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = min_text
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier in regex `{pat}`"));
                let max = match chars.get(*pos) {
                    Some('}') => min,
                    Some(',') => {
                        *pos += 1;
                        let mut max_text = String::new();
                        while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                            max_text.push(chars[*pos]);
                            *pos += 1;
                        }
                        if max_text.is_empty() {
                            min + UNBOUNDED_MAX
                        } else {
                            max_text
                                .parse()
                                .unwrap_or_else(|_| panic!("bad quantifier in regex `{pat}`"))
                        }
                    }
                    _ => panic!("bad quantifier in regex `{pat}`"),
                };
                assert!(
                    chars.get(*pos) == Some(&'}'),
                    "unterminated quantifier in regex `{pat}`"
                );
                *pos += 1;
                (min, max)
            }
            _ => (1, 1),
        }
    }

    /// Parse a `[...]` class body (opening bracket consumed) into the
    /// expanded set of characters it can produce.
    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Vec<char> {
        let (set, negated) = parse_class_set(chars, pos, pat);
        assert!(
            chars.get(*pos) == Some(&']'),
            "unterminated class in regex `{pat}`"
        );
        *pos += 1;
        let set = if negated { complement(&set) } else { set };
        assert!(!set.is_empty(), "empty character class in regex `{pat}`");
        set
    }

    fn complement(set: &[char]) -> Vec<char> {
        (0x20u8..=0x7E)
            .map(|b| b as char)
            .filter(|c| !set.contains(c))
            .collect()
    }

    /// Everything inside brackets up to (not consuming) the closing `]`,
    /// honoring `&&[^...]` subtraction.
    fn parse_class_set(chars: &[char], pos: &mut usize, pat: &str) -> (Vec<char>, bool) {
        let mut negated = false;
        if chars.get(*pos) == Some(&'^') {
            negated = true;
            *pos += 1;
        }
        let mut set: Vec<char> = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            match c {
                ']' => break,
                '&' if chars.get(*pos + 1) == Some(&'&') => {
                    *pos += 2;
                    assert!(
                        chars.get(*pos) == Some(&'['),
                        "expected `[` after `&&` in regex `{pat}`"
                    );
                    *pos += 1;
                    let (inner, inner_neg) = parse_class_set(chars, pos, pat);
                    assert!(
                        chars.get(*pos) == Some(&']'),
                        "unterminated inner class in regex `{pat}`"
                    );
                    *pos += 1;
                    if inner_neg {
                        set.retain(|c| !inner.contains(c));
                    } else {
                        set.retain(|c| inner.contains(c));
                    }
                }
                '\\' => {
                    *pos += 1;
                    let lo = escape_char(chars, pos, pat);
                    push_maybe_range(chars, pos, pat, &mut set, lo);
                }
                _ => {
                    *pos += 1;
                    push_maybe_range(chars, pos, pat, &mut set, c);
                }
            }
        }
        (set, negated)
    }

    /// After reading a class member `lo`, check for a `lo-hi` range.
    fn push_maybe_range(chars: &[char], pos: &mut usize, pat: &str, set: &mut Vec<char>, lo: char) {
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            *pos += 1;
            let hi = if chars[*pos] == '\\' {
                *pos += 1;
                escape_char(chars, pos, pat)
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            assert!(lo <= hi, "inverted class range in regex `{pat}`");
            for code in lo as u32..=hi as u32 {
                if let Some(c) = char::from_u32(code) {
                    set.push(c);
                }
            }
        } else {
            set.push(lo);
        }
    }
}

pub mod prelude {
    /// `prop::collection::...`, `prop::sample::...` etc.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

pub use test_runner::{Config, TestCaseError, TestCaseResult};

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::seeded_from(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < cfg.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        let _ = $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > cfg.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections ({rejected}) in {}",
                                stringify!($name)
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (after {passed} passing cases): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($param:ident : $pty:ty),* $(,)? )
                                ( $($arg:pat_param in $strat:expr),* $(,)? )
                                -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{left:?}` == `{right:?}`"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{left:?}` == `{right:?}`: {}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{left:?}` != `{right:?}`"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{left:?}` != `{right:?}`: {}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}
