//! # ensemble-gpu
//!
//! A Rust reproduction of *"Maximizing Parallelism and GPU Utilization For
//! Direct GPU Compilation Through Ensemble Execution"* (Tian, Chapman,
//! Doerfert — ICPP-W 2023), including every substrate the system depends
//! on, built from scratch:
//!
//! * [`arch`] — GPU hardware descriptions and occupancy math;
//! * [`mem`] — simulated device memory, coalescing, transfers;
//! * [`sim`] — the trace-driven SIMT performance simulator;
//! * [`ir`] — the module IR of the direct-GPU-compilation pipeline;
//! * [`compiler`] — the pass pipeline (declare-target marking, `main`
//!   renaming, RPC stub generation, globals-to-shared, DCE);
//! * [`rpc`] — the host RPC framework (service thread, stdio/fs/clock);
//! * [`libc`] — the partial device libc (malloc, printf, strings, qsort);
//! * [`core`] — **the paper's contribution**: the offload runtime with the
//!   plain loader \[26\] and the ensemble loader (`-f/-n/-t`, instance →
//!   team mapping, packed `(N/M, M, 1)` mapping);
//! * [`apps`] — the evaluation benchmarks (XSBench, RSBench, AMGmk,
//!   Page-Rank) ported to the device API with host references.
//!
//! ## Quickstart
//!
//! ```
//! use ensemble_gpu::core::{run_ensemble, EnsembleOptions, parse_arg_file};
//! use ensemble_gpu::sim::Gpu;
//! use ensemble_gpu::rpc::HostServices;
//!
//! // Four XSBench instances, each with its own arguments, in one kernel.
//! let lines = parse_arg_file("-l 40 -g 12\n-l 60 -g 12\n-l 40 -g 16\n-l 20 -g 12\n").unwrap();
//! let opts = EnsembleOptions { num_instances: 4, thread_limit: 32, ..Default::default() };
//! let mut gpu = Gpu::a100();
//! let app = ensemble_gpu::apps::xsbench::app();
//! let result = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
//! assert!(result.all_succeeded());
//! assert!(result.stdout[0].contains("Verification checksum"));
//! ```

pub use device_libc as libc;
pub use dgc_apps as apps;
pub use dgc_compiler as compiler;
pub use dgc_core as core;
pub use dgc_fault as fault;
pub use dgc_ir as ir;
pub use gpu_arch as arch;
pub use gpu_mem as mem;
pub use gpu_sim as sim;
pub use host_rpc as rpc;
